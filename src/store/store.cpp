#include "store/store.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "obs/metrics.hpp"
#include "store/checksum.hpp"
#include "store/codec.hpp"

namespace rat::store {

namespace {

// Snapshot header: magic "RATSTRS1" | u32 version | u64 last_seq |
// u32 entry count | u32 CRC32C over the preceding 24 bytes.
constexpr std::size_t kSnapshotHeaderBytes = 28;

std::uint32_t read_u32_le(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  return v;
}

std::uint64_t read_u64_le(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  return v;
}

}  // namespace

DurableStore::DurableStore(const std::filesystem::path& dir, Options options)
    : dir_(dir), options_(options) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec)
    throw StoreError(StoreErrorCode::kIo, dir_.string(),
                     "cannot create store directory: " + ec.message());

  // Leftover compaction temporaries were never renamed into place; they
  // hold no acknowledged data.
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (entry.path().extension() == ".tmp")
      std::filesystem::remove(entry.path(), ec);
  }

  load_snapshot(&snapshot_last_seq_);

  RecoveredJournal recovered;
  journal_.emplace(journal_path(),
                   JournalWriter::Options{options_.sync_every_append},
                   &recovered, snapshot_last_seq_);
  open_info_.dropped_bytes = recovered.dropped_bytes;
  for (auto& rec : recovered.records) {
    if (rec.seq <= snapshot_last_seq_) {
      // Compaction crash window: the snapshot was renamed into place but
      // the journal rewrite never happened; these records are already in
      // the snapshot.
      ++open_info_.stale_records;
      continue;
    }
    Cursor cur(rec.payload);
    std::string key;
    std::string value;
    try {
      const std::uint8_t op = cur.u8();
      if (op != 1)
        throw StoreError(StoreErrorCode::kCorrupt, journal_path().string(),
                         "unknown journal op " + std::to_string(op));
      key = cur.string();
      value = cur.string();
      cur.expect_done();
    } catch (const StoreError& e) {
      if (e.code() != StoreErrorCode::kCorrupt) throw;
      // A record whose frame CRC verified but whose payload does not
      // decode means a writer bug or cross-version file, not a torn
      // tail; refuse to guess.
      throw StoreError(StoreErrorCode::kCorrupt, journal_path().string(),
                       std::string("undecodable journal record: ") +
                           e.what());
    }
    map_[std::move(key)] = Entry{std::move(value), rec.seq};
    ++open_info_.journal_records;
  }

  if (obs::enabled()) {
    obs::Registry& reg = obs::Registry::global();
    reg.set_gauge("store.entries", static_cast<double>(map_.size()));
  }

  if (options_.background_compaction && options_.compact_journal_bytes > 0)
    compact_thread_ = std::thread([this] { compaction_worker(); });
}

DurableStore::~DurableStore() {
  {
    std::lock_guard<std::mutex> lk(compact_mu_);
    stop_ = true;
  }
  compact_cv_.notify_all();
  if (compact_thread_.joinable()) compact_thread_.join();
  try {
    sync();
  } catch (const StoreError&) {
    // Destructor: nowhere to report; data already on disk up to the last
    // successful sync.
  }
}

void DurableStore::load_snapshot(std::uint64_t* last_seq) {
  *last_seq = 0;
  const std::filesystem::path path = snapshot_path();
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return;

  std::ifstream f(path, std::ios::binary);
  if (!f)
    throw StoreError(StoreErrorCode::kIo, path.string(), "cannot open file");
  std::ostringstream os;
  os << f.rdbuf();
  if (f.bad())
    throw StoreError(StoreErrorCode::kIo, path.string(), "read error");
  const std::string data = os.str();

  // Unlike the journal, a snapshot is written whole and atomically
  // renamed: any corruption here is bit rot, and truncating it would
  // silently drop acknowledged data. Fail loudly instead.
  if (data.size() < kSnapshotHeaderBytes ||
      std::memcmp(data.data(), kSnapshotMagic, sizeof kSnapshotMagic) != 0 ||
      read_u32_le(data.data() + 8) != kStoreFormatVersion)
    throw StoreError(StoreErrorCode::kCorrupt, path.string(),
                     "bad snapshot header");
  if (read_u32_le(data.data() + 24) != crc32c(data.data(), 24))
    throw StoreError(StoreErrorCode::kCorrupt, path.string(),
                     "snapshot header checksum mismatch");
  const std::uint64_t snap_seq = read_u64_le(data.data() + 12);
  const std::uint32_t count = read_u32_le(data.data() + 20);

  std::size_t offset = kSnapshotHeaderBytes;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (data.size() - offset < kRecordHeaderBytes)
      throw StoreError(StoreErrorCode::kCorrupt, path.string(),
                       "snapshot truncated at entry " + std::to_string(i));
    const char* h = data.data() + offset;
    const std::uint32_t len = read_u32_le(h);
    const std::uint32_t crc = read_u32_le(h + 4);
    const std::uint64_t seq = read_u64_le(h + 8);
    if (len > kMaxRecordBytes ||
        data.size() - offset - kRecordHeaderBytes < len)
      throw StoreError(StoreErrorCode::kCorrupt, path.string(),
                       "snapshot truncated at entry " + std::to_string(i));
    std::string crc_input;
    crc_input.reserve(12 + len);
    crc_input.append(h, 4);
    crc_input.append(h + 8, 8);
    crc_input.append(h + kRecordHeaderBytes, len);
    if (crc32c(crc_input) != crc)
      throw StoreError(StoreErrorCode::kCorrupt, path.string(),
                       "snapshot entry " + std::to_string(i) +
                           " checksum mismatch");
    Cursor cur(std::string_view(h + kRecordHeaderBytes, len));
    std::string key = cur.string();
    std::string value = cur.string();
    cur.expect_done();
    // Snapshot entries carry ordinal seqs 1..count in last-write order
    // (count ≤ snap_seq, so journal records always sort after them and
    // unconditionally overwrite on replay).
    map_[std::move(key)] = Entry{std::move(value), seq};
    offset += kRecordHeaderBytes + len;
  }
  if (offset != data.size())
    throw StoreError(StoreErrorCode::kCorrupt, path.string(),
                     "snapshot has trailing bytes");

  *last_seq = snap_seq;
  open_info_.snapshot_entries = map_.size();
}

void DurableStore::put(std::string_view key, std::string_view value) {
  std::string payload;
  payload.reserve(1 + 8 + key.size() + value.size());
  put_u8(payload, 1);  // op: put
  put_string(payload, key);
  put_string(payload, value);

  {
    std::lock_guard<std::mutex> lk(mu_);
    const std::uint64_t seq = journal_->append(payload);
    map_[std::string(key)] = Entry{std::string(value), seq};
    if (obs::enabled())
      obs::Registry::global().set_gauge("store.entries",
                                        static_cast<double>(map_.size()));
  }
  maybe_trigger_compaction();
}

std::optional<std::string> DurableStore::get(std::string_view key) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = map_.find(std::string(key));
  if (it == map_.end()) return std::nullopt;
  return it->second.value;
}

bool DurableStore::contains(std::string_view key) const {
  std::lock_guard<std::mutex> lk(mu_);
  return map_.find(std::string(key)) != map_.end();
}

std::size_t DurableStore::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return map_.size();
}

void DurableStore::for_each(
    const std::function<void(const std::string&, const std::string&)>& fn)
    const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<const std::pair<const std::string, Entry>*> ordered;
  ordered.reserve(map_.size());
  for (const auto& kv : map_) ordered.push_back(&kv);
  std::sort(ordered.begin(), ordered.end(),
            [](const auto* a, const auto* b) {
              return a->second.seq < b->second.seq;
            });
  for (const auto* kv : ordered) fn(kv->first, kv->second.value);
}

std::uint64_t DurableStore::journal_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return journal_->bytes();
}

std::uint64_t DurableStore::compactions() const {
  std::lock_guard<std::mutex> lk(compact_mu_);
  return compactions_;
}

void DurableStore::sync() {
  std::lock_guard<std::mutex> lk(mu_);
  journal_->sync();
}

void DurableStore::write_snapshot_file(
    const std::filesystem::path& path, std::uint64_t last_seq,
    const std::vector<std::pair<std::string, Entry>>& entries) const {
  std::string data;
  data.append(kSnapshotMagic, sizeof kSnapshotMagic);
  put_u32(data, kStoreFormatVersion);
  put_u64(data, last_seq);
  put_u32(data, static_cast<std::uint32_t>(entries.size()));
  put_u32(data, crc32c(data));
  std::uint64_t ordinal = 0;
  for (const auto& [key, entry] : entries) {
    std::string payload;
    payload.reserve(8 + key.size() + entry.value.size());
    put_string(payload, key);
    put_string(payload, entry.value);
    data += frame_record(++ordinal, payload);
  }

  // Data must be durable before the snapshot name points at it.
  write_file_durable(path, data);
}

void DurableStore::compact() {
  // One compaction at a time; put() stays concurrent except for the two
  // brief critical sections below.
  std::lock_guard<std::mutex> serial(compact_mu_);
  obs::ScopedTimer timer("store.compact");

  // Phase 1: snapshot the map and the newest assigned seq.
  std::vector<std::pair<std::string, Entry>> entries;
  std::uint64_t snap_seq = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    snap_seq = journal_->next_seq() - 1;
    entries.reserve(map_.size());
    for (const auto& kv : map_) entries.emplace_back(kv.first, kv.second);
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              return a.second.seq < b.second.seq;
            });

  // Phase 2: durable snapshot, atomically renamed into place.
  const std::filesystem::path snap_tmp = dir_ / "snapshot.tmp";
  write_snapshot_file(snap_tmp, snap_seq, entries);
  std::error_code ec;
  std::filesystem::rename(snap_tmp, snapshot_path(), ec);
  if (ec)
    throw StoreError(StoreErrorCode::kIo, snapshot_path().string(),
                     "snapshot rename failed: " + ec.message());
  fsync_parent_dir(snapshot_path());

  // Phase 3: rewrite the journal to just the records newer than the
  // snapshot. Crash before the rename leaves the old journal, whose
  // seqs ≤ snap_seq are skipped on replay; crash after is complete.
  {
    std::lock_guard<std::mutex> lk(mu_);
    const std::filesystem::path jrn_tmp = dir_ / "journal.tmp";
    JournalWriter::Options jopts;
    jopts.sync_every_append = false;
    JournalWriter fresh = JournalWriter::create(jrn_tmp, jopts, snap_seq);
    std::vector<const std::pair<const std::string, Entry>*> survivors;
    for (const auto& kv : map_)
      if (kv.second.seq > snap_seq) survivors.push_back(&kv);
    std::sort(survivors.begin(), survivors.end(),
              [](const auto* a, const auto* b) {
                return a->second.seq < b->second.seq;
              });
    for (const auto* kv : survivors) {
      std::string payload;
      put_u8(payload, 1);
      put_string(payload, kv->first);
      put_string(payload, kv->second.value);
      fresh.append_with_seq(kv->second.seq, payload);
    }
    fresh.sync();
    std::filesystem::rename(jrn_tmp, journal_path(), ec);
    if (ec)
      throw StoreError(StoreErrorCode::kIo, journal_path().string(),
                       "journal rename failed: " + ec.message());
    fsync_parent_dir(journal_path());
    fresh.set_path(journal_path());
    fresh.set_sync_every_append(options_.sync_every_append);
    journal_.emplace(std::move(fresh));
    snapshot_last_seq_ = snap_seq;
  }
  ++compactions_;  // still under the serializing compact_mu_ lock
  if (obs::enabled()) obs::Registry::global().add_counter("store.compactions");
}

void DurableStore::maybe_trigger_compaction() {
  if (options_.compact_journal_bytes == 0) return;
  bool over = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    over = journal_->bytes() > options_.compact_journal_bytes;
  }
  if (!over) return;
  if (options_.background_compaction) {
    {
      std::lock_guard<std::mutex> lk(compact_mu_);
      compact_requested_ = true;
    }
    compact_cv_.notify_one();
  } else {
    compact();
  }
}

void DurableStore::compaction_worker() {
  std::unique_lock<std::mutex> lk(compact_mu_);
  while (true) {
    compact_cv_.wait(lk, [&] { return stop_ || compact_requested_; });
    if (stop_) return;
    compact_requested_ = false;
    lk.unlock();
    try {
      compact();
    } catch (const StoreError&) {
      // Compaction is an optimization; the journal remains authoritative
      // and a later put() will re-trigger it.
    }
    lk.lock();
  }
}

}  // namespace rat::store
