// rat.store.v1 append-only journal: the crash-safe half of the durable
// store (docs/STORE.md carries the full format spec).
//
// File layout:
//
//   header (16 bytes): magic "RATSTRJ1" | u32 version (1) | u32 CRC32C
//                      over the first 12 bytes
//   record (16 + n):   u32 payload_len | u32 crc | u64 seq | payload
//                      crc = CRC32C over payload_len || seq || payload
//
// All integers little-endian. Sequence numbers are strictly increasing
// within a file (after compaction rewrites a journal, survivors keep
// their original seqs, so gaps are legal; regressions are not).
//
// Recovery scans from the header and keeps the longest valid prefix: a
// short header, bad magic, short record, over-long length, CRC mismatch
// or non-increasing seq all end the scan *there* — everything before is
// returned, everything after is the torn tail. Opening a JournalWriter
// performs this recovery and physically truncates the tail, so a crashed
// writer's partial final write() never survives into the next session.
//
// Durability: with Options::sync_every_append (the default) every append
// is followed by fsync(2), so an acknowledged record survives power loss.
// Batched callers may disable it and call sync() at their own barriers.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "store/error.hpp"

namespace rat::store {

inline constexpr char kJournalMagic[8] = {'R', 'A', 'T', 'S',
                                          'T', 'R', 'J', '1'};
inline constexpr std::uint32_t kStoreFormatVersion = 1;
inline constexpr std::size_t kJournalHeaderBytes = 16;
inline constexpr std::size_t kRecordHeaderBytes = 16;
/// Sanity cap on one record's payload; a length field beyond this is
/// treated as corruption, not an allocation request.
inline constexpr std::uint32_t kMaxRecordBytes = 64u << 20;

struct JournalRecord {
  std::uint64_t seq = 0;
  std::string payload;
};

/// Outcome of scanning a journal file for its valid prefix.
struct RecoveredJournal {
  std::vector<JournalRecord> records;
  std::uint64_t valid_bytes = 0;    ///< file offset where validity ends
  std::uint64_t dropped_bytes = 0;  ///< torn/corrupt tail past valid_bytes
  std::uint64_t last_seq = 0;       ///< 0 when no record survived
};

/// Scan @p path (missing file = empty journal) and return the valid
/// prefix. Never throws for corruption — corruption just shortens the
/// prefix; only an unreadable file throws StoreError(kIo). Does not
/// modify the file.
RecoveredJournal recover_journal(const std::filesystem::path& path);

/// Options live outside the class so they can be default arguments
/// (a nested struct with default member initializers cannot be).
struct JournalWriterOptions {
  bool sync_every_append = true;
};

/// Append side of the journal. Opening recovers and truncates the torn
/// tail (or writes a fresh header); appends are single write(2) calls
/// followed by fsync when sync_every_append is set.
class JournalWriter {
 public:
  using Options = JournalWriterOptions;

  /// Open (or create) @p path with recovery + tail truncation. The
  /// surviving records are returned through @p recovered when non-null.
  /// Sequence numbering continues at max(last surviving seq, @p
  /// min_last_seq) + 1.
  JournalWriter(const std::filesystem::path& path, Options options = {},
                RecoveredJournal* recovered = nullptr,
                std::uint64_t min_last_seq = 0);

  /// Create @p path as a fresh, empty journal (truncating any existing
  /// file); numbering continues after @p min_last_seq.
  static JournalWriter create(const std::filesystem::path& path,
                              Options options = {},
                              std::uint64_t min_last_seq = 0);

  ~JournalWriter();

  JournalWriter(JournalWriter&& other) noexcept;
  JournalWriter& operator=(JournalWriter&& other) noexcept;
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Append one record with the next sequence number; returns that seq.
  std::uint64_t append(std::string_view payload);

  /// Append with an explicit sequence number (compaction rewrites keep
  /// survivors' original seqs). @p seq must exceed the last written seq.
  void append_with_seq(std::uint64_t seq, std::string_view payload);

  /// fsync the file (no-op when nothing was appended since the last one).
  void sync();

  std::uint64_t bytes() const { return bytes_; }
  std::uint64_t next_seq() const { return next_seq_; }
  const std::filesystem::path& path() const { return path_; }

  /// Update the remembered path after the caller renames the file (the
  /// open descriptor follows the inode; only error messages use this).
  void set_path(std::filesystem::path path) { path_ = std::move(path); }

  /// Flip per-append durability (compaction rewrites in bulk with it off,
  /// then re-enable before the writer goes live).
  void set_sync_every_append(bool v) { options_.sync_every_append = v; }

 private:
  JournalWriter() = default;
  void open_fresh();
  void close() noexcept;

  std::filesystem::path path_;
  Options options_;
  int fd_ = -1;
  std::uint64_t bytes_ = 0;
  std::uint64_t next_seq_ = 1;
  bool dirty_ = false;
};

/// Frame one record (header + payload) exactly as it appears on disk.
/// Exposed for tests that build journals byte-by-byte.
std::string frame_record(std::uint64_t seq, std::string_view payload);

/// fsync the directory containing @p child so a just-created or
/// just-renamed entry survives a crash of the directory itself.
void fsync_parent_dir(const std::filesystem::path& child);

/// Create/truncate @p path, write @p data in full, fsync and close.
/// The building block for write-temp-then-atomic-rename.
void write_file_durable(const std::filesystem::path& path,
                        std::string_view data);

}  // namespace rat::store
