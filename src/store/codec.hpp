// Little-endian binary encoding helpers shared by every rat.store.v1
// payload (journal records, snapshot entries, checkpoint items, cached
// prediction values).
//
// Writers append to a std::string; the Cursor reader is bounds-checked
// and throws StoreError(kCorrupt) instead of reading past the end, so a
// malformed payload can never turn into out-of-bounds access — decode
// failures surface as structured errors, not UB. Doubles travel as their
// exact IEEE-754 bit pattern (std::bit_cast), which is what makes
// "warm-start responses are byte-identical to cold evaluation" possible:
// no decimal round-trip ever touches a stored value.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

#include "store/error.hpp"

namespace rat::store {

inline void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

inline void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
}

inline void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
}

inline void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

/// Length-prefixed byte string (u32 length, then bytes).
inline void put_string(std::string& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s.data(), s.size());
}

/// Bounds-checked little-endian reader over one payload.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    pos_ += 8;
    return v;
  }

  double f64() { return std::bit_cast<double>(u64()); }

  std::string string() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

  /// Throws unless the payload has been consumed exactly (trailing bytes
  /// mean a format mismatch, not just noise).
  void expect_done() const {
    if (!done())
      throw StoreError(StoreErrorCode::kCorrupt, "",
                       "payload has " + std::to_string(remaining()) +
                           " trailing byte(s)");
  }

 private:
  void need(std::size_t n) const {
    if (data_.size() - pos_ < n)
      throw StoreError(StoreErrorCode::kCorrupt, "",
                       "payload truncated: need " + std::to_string(n) +
                           " byte(s), have " + std::to_string(remaining()));
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace rat::store
