// Checksums and fingerprint hashing for the durable store.
//
// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) guards
// every on-disk record: any single-burst corruption up to 32 bits — and
// every single-byte flip — is detected, which is what lets recovery keep
// exactly the valid prefix of a torn or bit-rotted journal.
//
// FNV-1a 64 is the identity hash used for campaign and work-item
// fingerprints (same function as svc::fnv1a64, re-homed here so layers
// below svc can fingerprint without depending on it). Fnv1a is the
// incremental form: feed it length-delimited fields so "ab"+"c" and
// "a"+"bc" cannot collide by framing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace rat::store {

/// CRC32C of @p data, continuing from @p seed (pass a previous return
/// value to checksum a logical buffer in pieces; 0 starts fresh).
std::uint32_t crc32c(const void* data, std::size_t size,
                     std::uint32_t seed = 0);

inline std::uint32_t crc32c(std::string_view data, std::uint32_t seed = 0) {
  return crc32c(data.data(), data.size(), seed);
}

/// 64-bit FNV-1a of @p data (offset basis 14695981039346656037).
std::uint64_t fnv1a64(std::string_view data);

/// Incremental FNV-1a 64 with self-delimiting field helpers: every
/// variable-length field is preceded by its length, so concatenation
/// ambiguity cannot produce colliding fingerprints.
class Fnv1a {
 public:
  Fnv1a& add_bytes(const void* data, std::size_t size);
  Fnv1a& add_u64(std::uint64_t v);       ///< 8 bytes little-endian
  Fnv1a& add_double(double v);           ///< exact bit pattern, as u64
  Fnv1a& add_string(std::string_view s); ///< length then bytes

  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 14695981039346656037ull;
};

}  // namespace rat::store
