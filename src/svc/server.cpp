#include "svc/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <optional>
#include <system_error>
#include <utility>

#include "obs/metrics.hpp"
#include "svc/fdio.hpp"

namespace rat::svc {

namespace {

void obs_count(const char* name) {
  if (obs::enabled()) obs::Registry::global().add_counter(name);
}

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

void make_pipe(int fds[2]) {
  if (!make_pipe_cloexec(fds)) throw_errno("svc::Server: pipe");
}

}  // namespace

/// One client connection. Every field is owned by the event loop thread;
/// worker threads only ever hold the shared_ptr (to route a finished
/// response back through the completion queue) and never touch state.
struct Server::Connection {
  int read_fd = -1;
  int write_fd = -1;            ///< == read_fd for sockets; 1 for stdio
  bool is_socket = false;
  bool read_shut = false;       ///< stop reading: EOF, oversize, or drain
  bool close_when_idle = false; ///< close once flushed and nothing pending
  bool dead = false;            ///< fd closed; late responses are dropped
  std::size_t outstanding = 0;  ///< submitted requests awaiting a response
  std::string rbuf;             ///< bytes read, not yet a complete line
  std::string wbuf;             ///< outbound bytes; [woff, size) unsent
  std::size_t woff = 0;

  std::size_t pending() const { return wbuf.size() - woff; }
};

Server::Server(Service& service, ServerConfig config)
    : service_(service), config_(config) {
  int fds[2];
  make_pipe(fds);
  wake_r_ = fds[0];
  wake_w_ = fds[1];
  // Non-blocking write end: a signal handler must never block on a full
  // pipe; one byte is enough to latch the stop request.
  set_nonblock(wake_w_);
  make_pipe(fds);
  notify_r_ = fds[0];
  notify_w_ = fds[1];
  set_nonblock(notify_r_);
  set_nonblock(notify_w_);
}

Server::~Server() {
  if (started_ && !ran_) {
    // Backstop for tests/errors that never called run().
    trigger_stop();
    run();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::close(wake_r_);
  ::close(wake_w_);
  ::close(notify_r_);
  ::close(notify_w_);
}

void Server::trigger_stop() {
  const char byte = 's';
  [[maybe_unused]] ssize_t n = ::write(wake_w_, &byte, 1);
}

void Server::start() {
  // Server-owned, not app-owned: a --stdio server whose stdout reader
  // exited must see EPIPE (handled as a normal close + drain below), not
  // die of SIGPIPE mid-response. MSG_NOSIGNAL already covers sockets;
  // this covers plain write(2) on pipes — including a router's worker
  // pipes, whichever transport spun up first.
  ignore_sigpipe();
  if (config_.tcp) {
#if defined(SOCK_NONBLOCK) && defined(SOCK_CLOEXEC)
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          0);
#else
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ >= 0) {
      set_nonblock(listen_fd_);
      set_cloexec(listen_fd_);
    }
#endif
    if (listen_fd_ < 0) throw_errno("svc::Server: socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0)
      throw_errno("svc::Server: bind 127.0.0.1");
    if (::listen(listen_fd_, config_.backlog > 0 ? config_.backlog : 1) != 0)
      throw_errno("svc::Server: listen");
    socklen_t len = sizeof addr;
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                      &len) != 0)
      throw_errno("svc::Server: getsockname");
    port_ = ntohs(addr.sin_port);
  }
  if (config_.stdio) {
    auto conn = std::make_shared<Connection>();
    conn->read_fd = config_.stdio_in_fd;
    conn->write_fd = config_.stdio_out_fd;
    conn->is_socket = false;
    set_nonblock(conn->read_fd);
    set_nonblock(conn->write_fd);
    conns_.push_back(std::move(conn));
  }
  // A shutdown op drains the whole server, not just the service.
  service_.set_shutdown_handler([this] { trigger_stop(); });
  loop_thread_ = std::thread([this] { event_loop(); });
  started_ = true;
}

void Server::run() {
  if (loop_thread_.joinable()) loop_thread_.join();
  // The loop exits only once the service reports no in-flight work, but
  // wait_drained() also covers direct library submissions that bypassed
  // the transport entirely.
  service_.begin_drain();
  service_.wait_drained();
  ran_ = true;
}

Server::Stats Server::stats() const {
  Stats st;
  st.connections = connections_.load(std::memory_order_relaxed);
  st.slow_clients_dropped =
      slow_clients_dropped_.load(std::memory_order_relaxed);
  st.responses_dropped = responses_dropped_.load(std::memory_order_relaxed);
  st.write_failures = write_failures_.load(std::memory_order_relaxed);
  st.accept_failures = accept_failures_.load(std::memory_order_relaxed);
  return st;
}

void Server::event_loop() {
  std::optional<obs::ScopedTimer> shutdown_timer;
  std::vector<pollfd> pfds;
  std::vector<std::shared_ptr<Connection>> slots;  // pfds[fixed+i] -> conn
  for (;;) {
    pfds.clear();
    slots.clear();
    // The wake pipe is latching (never read), so it is polled only until
    // the drain starts — afterwards it would spin the loop.
    int wake_idx = -1;
    if (!draining_) {
      wake_idx = static_cast<int>(pfds.size());
      pfds.push_back({wake_r_, POLLIN, 0});
    }
    const int notify_idx = static_cast<int>(pfds.size());
    pfds.push_back({notify_r_, POLLIN, 0});
    // After an EMFILE/ENFILE accept failure the listen fd stays readable
    // (the pending connection is still queued), so polling it would spin
    // the loop hot. Leave it out of the poll set until the backoff
    // expires; the queued connection is accepted on the retry.
    int backoff_ms = -1;
    if (accept_backoff_until_ns_ != 0) {
      const std::uint64_t now = obs::now_ns();
      if (now >= accept_backoff_until_ns_) {
        accept_backoff_until_ns_ = 0;
      } else {
        backoff_ms = static_cast<int>(
            (accept_backoff_until_ns_ - now + 999'999) / 1'000'000);
        if (backoff_ms < 1) backoff_ms = 1;
      }
    }
    int listen_idx = -1;
    if (!draining_ && listen_fd_ >= 0 && accept_backoff_until_ns_ == 0) {
      listen_idx = static_cast<int>(pfds.size());
      pfds.push_back({listen_fd_, POLLIN, 0});
    }
    const std::size_t fixed = pfds.size();
    for (const auto& c : conns_) {
      if (c->dead) continue;
      const bool want_read = !c->read_shut;
      const bool want_write = c->pending() > 0;
      if (c->read_fd == c->write_fd) {
        if (want_read || want_write) {
          pfds.push_back({c->read_fd,
                          static_cast<short>((want_read ? POLLIN : 0) |
                                             (want_write ? POLLOUT : 0)),
                          0});
          slots.push_back(c);
        }
      } else {  // stdio: distinct read/write fds, one slot each
        if (want_read) {
          pfds.push_back({c->read_fd, POLLIN, 0});
          slots.push_back(c);
        }
        if (want_write) {
          pfds.push_back({c->write_fd, POLLOUT, 0});
          slots.push_back(c);
        }
      }
    }

    // During drain the service's in-flight count can hit zero without
    // any fd becoming ready (workers only ping the notify pipe when a
    // response lands), so poll with a short timeout to re-check. An
    // active accept backoff also bounds the wait so the retry happens.
    const int rc = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                          draining_ ? 20 : backoff_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }

    if (wake_idx >= 0 && (pfds[wake_idx].revents & POLLIN) != 0) {
      enter_drain();
      shutdown_timer.emplace("svc.server.shutdown");
    }
    if ((pfds[notify_idx].revents & POLLIN) != 0) {
      char buf[4096];
      while (::read(notify_r_, buf, sizeof buf) > 0) {
      }
    }
    process_completions();
    if (listen_idx >= 0 && !draining_ &&
        (pfds[listen_idx].revents & POLLIN) != 0)
      do_accept();

    for (std::size_t i = fixed; i < pfds.size(); ++i) {
      const auto& c = slots[i - fixed];
      const short events = pfds[i].events;
      const short rev = pfds[i].revents;
      if (rev == 0 || c->dead) continue;
      if ((events & POLLIN) != 0 &&
          (rev & (POLLIN | POLLHUP | POLLERR)) != 0 && !c->read_shut)
        handle_readable(c);
      if (c->dead) continue;
      if ((events & POLLOUT) != 0 &&
          (rev & (POLLOUT | POLLHUP | POLLERR)) != 0)
        flush_writes(c);
      if (c->dead) continue;
      if ((rev & POLLNVAL) != 0) close_connection(*c);
    }

    // Connections that said goodbye (EOF, oversize) close once their
    // last pending response is out the door.
    for (const auto& c : conns_)
      if (!c->dead && c->close_when_idle && c->outstanding == 0 &&
          c->pending() == 0)
        close_connection(*c);
    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [](const auto& c) { return c->dead; }),
                 conns_.end());

    if (draining_) {
      if (obs::now_ns() > flush_deadline_ns_) {
        // Flush budget exhausted: whoever still has unread responses is
        // a slow client; drop them so shutdown always terminates.
        for (const auto& c : conns_)
          if (!c->dead && c->pending() > 0) drop_slow_client(c);
      }
      bool flushed = true;
      for (const auto& c : conns_)
        if (!c->dead && c->pending() > 0) flushed = false;
      // Order matters: once in_flight reads zero every respond() — and
      // therefore every enqueue — has completed, so a subsequent empty
      // completion queue really means nothing is pending anywhere.
      const bool in_flight_zero = service_.stats().in_flight == 0;
      bool queue_empty;
      {
        std::lock_guard lock(done_mu_);
        queue_empty = done_.empty();
      }
      if (flushed && in_flight_zero && queue_empty) break;
    }
  }
  // Now, and only now, tear the connections down (stdio fds 0/1 are left
  // to the process).
  for (const auto& c : conns_) close_connection(*c);
  conns_.clear();
}

void Server::enter_drain() {
  draining_ = true;
  // 1. Stop accepting.
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // 2. Stop reading; connections stay open so responses still flow.
  for (const auto& c : conns_) c->read_shut = true;
  // 3. No new requests can arrive (reads stopped above, on this same
  //    thread); refuse stragglers submitted directly by library users.
  service_.begin_drain();
  flush_deadline_ns_ =
      obs::now_ns() +
      static_cast<std::uint64_t>(
          config_.drain_flush_timeout_ms > 0 ? config_.drain_flush_timeout_ms
                                             : 0) *
          1'000'000ull;
}

void Server::do_accept() {
  for (;;) {
    const int fd = accept_nonblock_cloexec(listen_fd_);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Fd (or buffer) exhaustion: the connection stays queued and the
        // listen fd stays readable, so back off instead of spinning.
        accept_failures_.fetch_add(1, std::memory_order_relaxed);
        obs_count("svc.server.accept_failed");
        accept_backoff_until_ns_ =
            obs::now_ns() +
            static_cast<std::uint64_t>(
                config_.accept_backoff_ms > 0 ? config_.accept_backoff_ms
                                              : 1) *
                1'000'000ull;
        return;
      }
      return;  // EAGAIN: everything pending was accepted
    }
    if (config_.so_sndbuf > 0)
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &config_.so_sndbuf,
                   sizeof config_.so_sndbuf);
    connections_.fetch_add(1, std::memory_order_relaxed);
    obs_count("svc.server.connections");
    auto conn = std::make_shared<Connection>();
    conn->read_fd = fd;
    conn->write_fd = fd;
    conn->is_socket = true;
    conns_.push_back(std::move(conn));
  }
}

void Server::handle_readable(const std::shared_ptr<Connection>& conn) {
  char chunk[65536];
  const ssize_t n = ::read(conn->read_fd, chunk, sizeof chunk);
  if (n < 0) {
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) return;
    close_connection(*conn);  // client went away; its responses drop
    return;
  }
  if (n == 0) {
    // EOF. A final unterminated line still counts as a request.
    if (!conn->rbuf.empty()) {
      std::string line;
      line.swap(conn->rbuf);
      submit_line(conn, std::move(line));
    }
    conn->read_shut = true;
    if (conn->is_socket) {
      // Half-close: flush every response the client is still owed, then
      // close once nothing is pending.
      conn->close_when_idle = true;
    } else {
      // stdin EOF: no more requests can ever arrive, and a piped
      // `rat_serve --stdio` must terminate rather than hang. Drain the
      // whole server — the connection stays open so in-flight responses
      // still reach stdout.
      trigger_stop();
    }
    return;
  }
  conn->rbuf.append(chunk, static_cast<std::size_t>(n));
  deliver_lines(conn);
}

void Server::deliver_lines(const std::shared_ptr<Connection>& conn) {
  std::size_t start = 0;
  bool oversize = false;
  for (;;) {
    const std::size_t nl = conn->rbuf.find('\n', start);
    if (nl == std::string::npos) break;
    if (nl - start > config_.max_line_bytes) {
      oversize = true;
      break;
    }
    submit_line(conn, conn->rbuf.substr(start, nl - start));
    start = nl + 1;
  }
  conn->rbuf.erase(0, start);
  // Both a complete line over the limit and a partial line that can no
  // longer fit under it are protocol violations; the connection drops
  // (after its structured error and any owed responses are flushed).
  if (oversize || conn->rbuf.size() > config_.max_line_bytes) {
    append_response(
        conn, error_response("", SvcErrorCode::kBadRequest,
                             "request line exceeds " +
                                 std::to_string(config_.max_line_bytes) +
                                 " bytes"));
    conn->rbuf.clear();
    conn->read_shut = true;
    if (conn->is_socket)
      conn->close_when_idle = true;
    else
      trigger_stop();  // a stdio protocol violation ends the process
  }
}

void Server::submit_line(const std::shared_ptr<Connection>& conn,
                         std::string line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (line.empty()) return;  // blank keepalive lines are legal
  ++conn->outstanding;
  // The callback holds the connection alive until the response lands,
  // even if the loop's registry let go first.
  service_.submit(line, [this, conn](std::string response) {
    enqueue_response(conn, std::move(response));
  });
}

void Server::enqueue_response(std::shared_ptr<Connection> conn,
                              std::string line) {
  bool was_empty;
  {
    std::lock_guard lock(done_mu_);
    was_empty = done_.empty();
    done_.emplace_back(std::move(conn), std::move(line));
  }
  // One byte per batch is enough: the loop drains the pipe and swaps the
  // whole queue. Coalescing keeps the pipe from ever filling.
  if (was_empty) {
    const char byte = 'r';
    [[maybe_unused]] ssize_t n = ::write(notify_w_, &byte, 1);
  }
}

void Server::process_completions() {
  std::vector<std::pair<std::shared_ptr<Connection>, std::string>> batch;
  {
    std::lock_guard lock(done_mu_);
    batch.swap(done_);
  }
  for (auto& [conn, line] : batch) {
    if (conn->outstanding > 0) --conn->outstanding;
    append_response(conn, line);
  }
}

void Server::append_response(const std::shared_ptr<Connection>& conn,
                             const std::string& line) {
  if (conn->dead) {
    responses_dropped_.fetch_add(1, std::memory_order_relaxed);
    obs_count("svc.server.responses_dropped");
    return;
  }
  conn->wbuf += line;
  conn->wbuf += '\n';
  flush_writes(conn);
  if (!conn->dead && conn->pending() > config_.max_write_buffer_bytes)
    drop_slow_client(conn);
}

void Server::flush_writes(const std::shared_ptr<Connection>& conn) {
  while (conn->pending() > 0) {
    const ssize_t n =
        conn->is_socket
            ? ::send(conn->write_fd, conn->wbuf.data() + conn->woff,
                     conn->pending(), MSG_NOSIGNAL)
            : ::write(conn->write_fd, conn->wbuf.data() + conn->woff,
                      conn->pending());
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      // EPIPE/ECONNRESET mean the reader is gone — a normal close (its
      // remaining responses drop), not a transport failure. With SIGPIPE
      // ignored (start()) a vanished stdio reader arrives here as EPIPE
      // instead of killing the process.
      if (errno != EPIPE && errno != ECONNRESET) {
        write_failures_.fetch_add(1, std::memory_order_relaxed);
        obs_count("svc.server.write_failed");
      }
      const bool stdio = !conn->is_socket;
      close_connection(*conn);
      // stdout unusable: no response can ever be delivered again, so a
      // --stdio server drains and exits instead of reading forever.
      if (stdio) trigger_stop();
      return;
    }
    conn->woff += static_cast<std::size_t>(n);
  }
  if (conn->pending() == 0) {
    conn->wbuf.clear();
    conn->woff = 0;
  } else if (conn->woff >= 65536) {
    conn->wbuf.erase(0, conn->woff);
    conn->woff = 0;
  }
}

void Server::drop_slow_client(const std::shared_ptr<Connection>& conn) {
  slow_clients_dropped_.fetch_add(1, std::memory_order_relaxed);
  obs_count("svc.server.slow_client_dropped");
  close_connection(*conn);
}

void Server::close_connection(Connection& conn) {
  if (conn.dead) return;
  conn.dead = true;
  conn.wbuf.clear();
  conn.woff = 0;
  if (conn.is_socket) ::close(conn.read_fd);  // read_fd == write_fd
  // stdio: leave fds 0/1 to the process.
}

}  // namespace rat::svc
