#include "svc/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>
#include <utility>

#include "obs/metrics.hpp"

namespace rat::svc {

namespace {

void obs_count(const char* name) {
  if (obs::enabled()) obs::Registry::global().add_counter(name);
}

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

/// One client: a read fd the reader thread drains and a write fd the
/// service's response callbacks target. Writes and the closed flag share
/// one mutex, so a response racing connection teardown either completes
/// or is dropped cleanly — never a write to a reused descriptor.
struct Server::Connection {
  int read_fd = -1;
  int write_fd = -1;
  bool is_socket = false;  ///< sockets: send(MSG_NOSIGNAL) + close both
  std::mutex write_mu;
  bool closed = false;

  void send_line(const std::string& line) {
    std::lock_guard lock(write_mu);
    if (closed) {
      obs_count("svc.server.responses_dropped");
      return;
    }
    std::string out = line;
    out += '\n';
    std::size_t off = 0;
    while (off < out.size()) {
      const ssize_t n =
          is_socket
              ? ::send(write_fd, out.data() + off, out.size() - off,
                       MSG_NOSIGNAL)
              : ::write(write_fd, out.data() + off, out.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        obs_count("svc.server.write_failed");
        return;
      }
      off += static_cast<std::size_t>(n);
    }
  }

  void close_fds() {
    std::lock_guard lock(write_mu);
    if (closed) return;
    closed = true;
    if (is_socket) {
      ::close(read_fd);  // read_fd == write_fd for sockets
    }
    // stdio: leave fds 0/1 to the process.
  }

  /// Wake a reader blocked in poll/read without closing anything.
  void shutdown_read() {
    if (is_socket) ::shutdown(read_fd, SHUT_RD);
  }
};

Server::Server(Service& service, ServerConfig config)
    : service_(service), config_(config) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) throw_errno("svc::Server: pipe");
  wake_r_ = pipe_fds[0];
  wake_w_ = pipe_fds[1];
  // Non-blocking write end: a signal handler must never block on a full
  // pipe; one byte is enough to latch the stop request.
  ::fcntl(wake_w_, F_SETFL, O_NONBLOCK);
}

Server::~Server() {
  if (started_ && !ran_) {
    // Backstop for tests/errors that never called run().
    trigger_stop();
    run();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::close(wake_r_);
  ::close(wake_w_);
}

void Server::trigger_stop() {
  const char byte = 's';
  [[maybe_unused]] ssize_t n = ::write(wake_w_, &byte, 1);
}

void Server::start() {
  if (config_.tcp) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw_errno("svc::Server: socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0)
      throw_errno("svc::Server: bind 127.0.0.1");
    if (::listen(listen_fd_, 64) != 0) throw_errno("svc::Server: listen");
    socklen_t len = sizeof addr;
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                      &len) != 0)
      throw_errno("svc::Server: getsockname");
    port_ = ntohs(addr.sin_port);
    accept_thread_ = std::thread([this] { accept_loop(); });
  }
  if (config_.stdio) {
    auto conn = std::make_shared<Connection>();
    conn->read_fd = STDIN_FILENO;
    conn->write_fd = STDOUT_FILENO;
    conn->is_socket = false;
    std::thread t([this, conn] { reader_loop(conn); });
    add_connection(conn, std::move(t));
  }
  // A shutdown op drains the whole server, not just the service.
  service_.set_shutdown_handler([this] { trigger_stop(); });
  started_ = true;
}

void Server::add_connection(std::shared_ptr<Connection> conn,
                            std::thread thread) {
  std::lock_guard lock(conns_mu_);
  conns_.push_back(std::move(conn));
  conn_threads_.push_back(std::move(thread));
}

void Server::accept_loop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_r_, POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // stop requested
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;
    }
    obs_count("svc.server.connections");
    auto conn = std::make_shared<Connection>();
    conn->read_fd = fd;
    conn->write_fd = fd;
    conn->is_socket = true;
    std::thread t([this, conn] { reader_loop(conn); });
    add_connection(conn, std::move(t));
  }
}

void Server::reader_loop(std::shared_ptr<Connection> conn) {
  std::string buffer;
  bool stop = false;
  auto submit_line = [this, &conn](std::string line) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) return;  // blank keepalive lines are legal
    // The callback holds the connection alive until the response lands,
    // even if the reader (and the server's registry) let go first.
    service_.submit(line,
                    [conn](std::string response) { conn->send_line(response); });
  };
  bool oversize = false;
  while (!stop) {
    // Deliver every complete line already buffered.
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      if (nl - start > config_.max_line_bytes) {
        oversize = true;
        break;
      }
      submit_line(buffer.substr(start, nl - start));
      start = nl + 1;
    }
    buffer.erase(0, start);
    // Both a complete line over the limit and a partial line that can no
    // longer fit under it are protocol violations; the connection drops.
    if (oversize || buffer.size() > config_.max_line_bytes) {
      conn->send_line(error_response(
          "", SvcErrorCode::kBadRequest,
          "request line exceeds " +
              std::to_string(config_.max_line_bytes) + " bytes"));
      break;
    }

    pollfd fds[2] = {{conn->read_fd, POLLIN, 0}, {wake_r_, POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) return;  // draining: stop reading, keep fd
    if ((fds[0].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;

    char chunk[65536];
    const ssize_t n = ::read(conn->read_fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) {
      // EOF. A final unterminated line still counts as a request.
      if (!buffer.empty()) submit_line(std::move(buffer));
      stop = true;
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  // Distinguish a client-initiated end (EOF / error / oversize: close,
  // dropping any in-flight responses — the client hung up) from a
  // drain-initiated one (SHUT_RD also reads as EOF: keep the fd open so
  // pending responses still land; run() closes it after the drain).
  pollfd wake{wake_r_, POLLIN, 0};
  const bool draining = ::poll(&wake, 1, 0) > 0 && (wake.revents & POLLIN);
  if (!draining) {
    if (conn->is_socket) {
      conn->close_fds();
    } else {
      // stdin EOF (or a stdio protocol violation): no more requests can
      // ever arrive on this connection, and a piped `rat_serve --stdio`
      // must terminate rather than hang. Drain the whole server — the
      // connection stays open so in-flight responses still reach stdout;
      // run() closes it after the drain.
      trigger_stop();
    }
  }
}

void Server::run() {
  // Wait for a stop trigger (wake pipe readable).
  for (;;) {
    pollfd p{wake_r_, POLLIN, 0};
    const int rc = ::poll(&p, 1, -1);
    if (rc < 0 && errno == EINTR) continue;
    if (rc > 0 && (p.revents & POLLIN) != 0) break;
    if (rc < 0) break;
  }
  obs::ScopedTimer timer("svc.server.shutdown");

  // 1. Stop accepting: the accept loop sees the wake pipe readable (it
  //    is never drained, so it latches for every poller) and returns.
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  // 2. Stop the readers and join them BEFORE waiting on the service:
  //    once every reader has returned, no further submission can race
  //    past the drain wait. Readers normally exit via their own wake
  //    poll; shutdown_read covers one blocked in read() that passed the
  //    poll before the wake byte arrived. Connections stay open — only
  //    the read side is shut, responses still flow.
  std::vector<std::shared_ptr<Connection>> conns;
  std::vector<std::thread> threads;
  {
    std::lock_guard lock(conns_mu_);
    conns.swap(conns_);
    threads.swap(conn_threads_);
  }
  for (auto& c : conns) c->shutdown_read();
  for (auto& t : threads) t.join();

  // 3. No new requests can arrive; refuse stragglers (library users
  //    submitting directly) and wait until every admitted request has
  //    written its response through the still-open connections.
  service_.begin_drain();
  service_.wait_drained();

  // 4. Now, and only now, tear the connections down.
  for (auto& c : conns) c->close_fds();
  ran_ = true;
}

}  // namespace rat::svc
