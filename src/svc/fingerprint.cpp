#include "svc/fingerprint.hpp"

#include <cstdio>
#include <sstream>

#include "io/json.hpp"

namespace rat::svc {

std::string canonical_text(const core::RatInputs& in) {
  std::ostringstream os;
  os << "rat.fp.v1\n";
  os << "name=" << in.name << '\n';
  os << "elements_in=" << in.dataset.elements_in << '\n';
  os << "elements_out=" << in.dataset.elements_out << '\n';
  os << "bytes_per_element=" << io::json_number(in.dataset.bytes_per_element)
     << '\n';
  os << "ideal_bw_bytes_per_sec="
     << io::json_number(in.comm.ideal_bw_bytes_per_sec) << '\n';
  os << "alpha_write=" << io::json_number(in.comm.alpha_write) << '\n';
  os << "alpha_read=" << io::json_number(in.comm.alpha_read) << '\n';
  os << "ops_per_element=" << io::json_number(in.comp.ops_per_element)
     << '\n';
  os << "throughput_ops_per_cycle="
     << io::json_number(in.comp.throughput_ops_per_cycle) << '\n';
  os << "fclock_hz=";
  for (std::size_t i = 0; i < in.comp.fclock_hz.size(); ++i) {
    if (i) os << ',';
    os << io::json_number(in.comp.fclock_hz[i]);
  }
  os << '\n';
  os << "tsoft_sec=" << io::json_number(in.software.tsoft_sec) << '\n';
  os << "n_iterations=" << in.software.n_iterations << '\n';
  return os.str();
}

std::uint64_t fnv1a64(const std::string& text) {
  std::uint64_t h = 14695981039346656037ull;
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t fingerprint(const core::RatInputs& inputs) {
  return fnv1a64(canonical_text(inputs));
}

std::string fingerprint_hex(std::uint64_t fp) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

}  // namespace rat::svc
