#include "svc/cache.hpp"

#include "obs/metrics.hpp"

namespace rat::svc {

namespace {

void obs_count(const char* name) {
  if (obs::enabled()) obs::Registry::global().add_counter(name);
}

/// Approximate resident footprint of one entry: key bytes plus the
/// prediction vector's payload (bookkeeping overhead excluded — the
/// gauge tracks growth, it is not an allocator audit).
std::uint64_t entry_bytes(const std::string& key,
                          const ResultCache::Value& value) {
  std::uint64_t n = key.size();
  if (value) n += value->size() * sizeof(core::ThroughputPrediction);
  return n;
}

}  // namespace

ResultCache::ResultCache(std::size_t capacity, std::size_t n_shards)
    : capacity_(capacity) {
  if (n_shards == 0) n_shards = 1;
  if (n_shards > capacity && capacity > 0) n_shards = capacity;
  per_shard_capacity_ =
      capacity == 0 ? 0 : (capacity + n_shards - 1) / n_shards;
  shards_.reserve(n_shards);
  for (std::size_t i = 0; i < n_shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

ResultCache::Value ResultCache::get(const std::string& key,
                                    std::uint64_t fp) {
  Shard& s = shard_for(fp);
  Value found;
  {
    std::lock_guard lock(s.mu);
    auto it = s.index.find(key);
    if (it != s.index.end()) {
      // Refresh: move to the front of the shard's LRU list.
      s.lru.splice(s.lru.begin(), s.lru, it->second);
      found = it->second->second;
    }
  }
  if (found) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    obs_count("svc.cache.hit");
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    obs_count("svc.cache.miss");
  }
  // The derived hit_ratio gauge is refreshed in stats() (stats op /
  // metrics export), not here: a gauge write per lookup would tax the
  // hit fast path for a number nobody reads mid-flight.
  return found;
}

ResultCache::PutOutcome ResultCache::put(const std::string& key,
                                         std::uint64_t fp, Value value) {
  if (per_shard_capacity_ == 0) return PutOutcome::kDropped;
  Shard& s = shard_for(fp);
  const std::uint64_t new_bytes = entry_bytes(key, value);
  std::int64_t bytes_delta = 0;
  PutOutcome outcome;
  {
    std::lock_guard lock(s.mu);
    auto it = s.index.find(key);
    if (it != s.index.end()) {
      // Concurrent miss on the same key: both computed, results are
      // deterministic, so refreshing the existing entry is equivalent.
      bytes_delta =
          static_cast<std::int64_t>(new_bytes) -
          static_cast<std::int64_t>(entry_bytes(key, it->second->second));
      it->second->second = std::move(value);
      s.lru.splice(s.lru.begin(), s.lru, it->second);
      outcome = PutOutcome::kRefreshed;
    } else {
      bytes_delta = static_cast<std::int64_t>(new_bytes);
      if (s.lru.size() >= per_shard_capacity_) {
        bytes_delta -= static_cast<std::int64_t>(
            entry_bytes(s.lru.back().first, s.lru.back().second));
        s.index.erase(s.lru.back().first);
        s.lru.pop_back();
        outcome = PutOutcome::kInsertedEvicting;
      } else {
        outcome = PutOutcome::kInserted;
      }
      s.lru.emplace_front(key, std::move(value));
      s.index.emplace(key, s.lru.begin());
    }
  }
  if (outcome == PutOutcome::kInsertedEvicting) {
    evictions_.fetch_add(1, std::memory_order_relaxed);
    obs_count("svc.cache.eviction");
  }
  if (outcome == PutOutcome::kInserted)
    size_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(static_cast<std::uint64_t>(bytes_delta),
                   std::memory_order_relaxed);
  if (obs::enabled()) {
    obs::Registry& reg = obs::Registry::global();
    reg.set_gauge("svc.cache.size",
                  static_cast<double>(size_.load(std::memory_order_relaxed)));
    reg.set_gauge("svc.cache.bytes", static_cast<double>(bytes_.load(
                                         std::memory_order_relaxed)));
  }
  return outcome;
}

ResultCache::Stats ResultCache::stats() const {
  Stats st;
  st.hits = hits_.load(std::memory_order_relaxed);
  st.misses = misses_.load(std::memory_order_relaxed);
  st.evictions = evictions_.load(std::memory_order_relaxed);
  st.size = size_.load(std::memory_order_relaxed);
  st.bytes = bytes_.load(std::memory_order_relaxed);
  // Reading stats is the export point (stats op, metrics flush), so the
  // derived gauge is brought current here rather than on every get().
  if (obs::enabled())
    obs::Registry::global().set_gauge("svc.cache.hit_ratio", hit_ratio(st));
  return st;
}

void ResultCache::clear() {
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
  size_.store(0, std::memory_order_relaxed);
  bytes_.store(0, std::memory_order_relaxed);
  // Push the zeroed gauges too: exported metrics must not keep reporting
  // the pre-clear footprint as phantom resident entries.
  if (obs::enabled()) {
    obs::Registry& reg = obs::Registry::global();
    reg.set_gauge("svc.cache.size", 0.0);
    reg.set_gauge("svc.cache.bytes", 0.0);
  }
}

}  // namespace rat::svc
