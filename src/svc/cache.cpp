#include "svc/cache.hpp"

#include "obs/metrics.hpp"

namespace rat::svc {

namespace {

void obs_count(const char* name) {
  if (obs::enabled()) obs::Registry::global().add_counter(name);
}

}  // namespace

ResultCache::ResultCache(std::size_t capacity, std::size_t n_shards)
    : capacity_(capacity) {
  if (n_shards == 0) n_shards = 1;
  if (n_shards > capacity && capacity > 0) n_shards = capacity;
  per_shard_capacity_ =
      capacity == 0 ? 0 : (capacity + n_shards - 1) / n_shards;
  shards_.reserve(n_shards);
  for (std::size_t i = 0; i < n_shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

ResultCache::Value ResultCache::get(const std::string& key,
                                    std::uint64_t fp) {
  Shard& s = shard_for(fp);
  {
    std::lock_guard lock(s.mu);
    auto it = s.index.find(key);
    if (it != s.index.end()) {
      // Refresh: move to the front of the shard's LRU list.
      s.lru.splice(s.lru.begin(), s.lru, it->second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      obs_count("svc.cache.hit");
      return it->second->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  obs_count("svc.cache.miss");
  return nullptr;
}

void ResultCache::put(const std::string& key, std::uint64_t fp,
                      Value value) {
  if (per_shard_capacity_ == 0) return;
  Shard& s = shard_for(fp);
  bool evicted = false;
  bool inserted = false;
  {
    std::lock_guard lock(s.mu);
    auto it = s.index.find(key);
    if (it != s.index.end()) {
      // Concurrent miss on the same key: both computed, results are
      // deterministic, so refreshing the existing entry is equivalent.
      it->second->second = std::move(value);
      s.lru.splice(s.lru.begin(), s.lru, it->second);
    } else {
      if (s.lru.size() >= per_shard_capacity_) {
        s.index.erase(s.lru.back().first);
        s.lru.pop_back();
        evicted = true;
      }
      s.lru.emplace_front(key, std::move(value));
      s.index.emplace(key, s.lru.begin());
      inserted = true;
    }
  }
  if (evicted) {
    evictions_.fetch_add(1, std::memory_order_relaxed);
    obs_count("svc.cache.eviction");
  }
  if (inserted && !evicted) size_.fetch_add(1, std::memory_order_relaxed);
  if (obs::enabled())
    obs::Registry::global().set_gauge(
        "svc.cache.size",
        static_cast<double>(size_.load(std::memory_order_relaxed)));
}

ResultCache::Stats ResultCache::stats() const {
  Stats st;
  st.hits = hits_.load(std::memory_order_relaxed);
  st.misses = misses_.load(std::memory_order_relaxed);
  st.evictions = evictions_.load(std::memory_order_relaxed);
  st.size = size_.load(std::memory_order_relaxed);
  return st;
}

void ResultCache::clear() {
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
  size_.store(0, std::memory_order_relaxed);
}

}  // namespace rat::svc
