#include "svc/service.hpp"

#include <exception>
#include <sstream>
#include <utility>

#include "io/json.hpp"
#include "io/loader.hpp"
#include "obs/metrics.hpp"
#include "svc/fingerprint.hpp"
#include "svc/persist.hpp"
#include "util/thread_pool.hpp"

namespace rat::svc {

namespace {

void obs_count(const char* name) {
  if (obs::enabled()) obs::Registry::global().add_counter(name);
}

}  // namespace

Service::Service(ServiceConfig config)
    : config_(config),
      cache_(config.cache_capacity, config.cache_shards) {
  if (!config_.cache_dir.empty()) {
    persist_ = std::make_unique<PersistentResultCache>(config_.cache_dir);
    warmed_ = persist_->warm(cache_);
    if (obs::enabled())
      obs::Registry::global().set_gauge("svc.cache.warmed",
                                        static_cast<double>(warmed_));
  }
}

Service::~Service() { drain(); }

void Service::set_shutdown_handler(std::function<void()> handler) {
  std::lock_guard lock(mu_);
  shutdown_handler_ = std::move(handler);
}

void Service::respond(const std::function<void(std::string)>& on_response,
                      std::string line, bool ok) {
  (ok ? responses_ok_ : responses_error_)
      .fetch_add(1, std::memory_order_relaxed);
  obs_count(ok ? "svc.responses.ok" : "svc.responses.error");
  try {
    on_response(std::move(line));
  } catch (...) {
    // The transport failed to deliver (e.g. client hung up). The
    // request was still answered from the service's point of view.
    obs_count("svc.responses.delivery_failed");
  }
}

void Service::submit(const std::string& line,
                     std::function<void(std::string)> on_response) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  obs_count("svc.requests");

  Request req;
  try {
    req = parse_request(line);
  } catch (const ProtocolError& e) {
    respond(on_response, error_response(e.id(), e.code(), e.what()),
            /*ok=*/false);
    return;
  }

  switch (req.op) {
    case Request::Op::kPing:
      respond(on_response, pong_response(req.id), /*ok=*/true);
      return;
    case Request::Op::kStats:
      respond(on_response, stats_response(req.id), /*ok=*/true);
      return;
    case Request::Op::kShutdown: {
      respond(on_response, shutdown_response(req.id), /*ok=*/true);
      std::function<void()> handler;
      {
        std::lock_guard lock(mu_);
        handler = shutdown_handler_;
      }
      if (handler)
        handler();
      else
        begin_drain();
      return;
    }
    case Request::Op::kEvaluate:
      break;
  }

  // Admission control: bounded queue, reject rather than buffer.
  {
    std::lock_guard lock(mu_);
    if (draining_) {
      rejected_draining_.fetch_add(1, std::memory_order_relaxed);
      obs_count("svc.rejected.draining");
      respond(on_response,
              error_response(req.id, SvcErrorCode::kShuttingDown,
                             "service is draining"),
              /*ok=*/false);
      return;
    }
    if (in_flight_ >= config_.queue_capacity) {
      rejected_overloaded_.fetch_add(1, std::memory_order_relaxed);
      obs_count("svc.rejected.overloaded");
      respond(on_response,
              error_response(
                  req.id, SvcErrorCode::kOverloaded,
                  "admission queue full (" +
                      std::to_string(config_.queue_capacity) +
                      " requests queued or running); retry later"),
              /*ok=*/false);
      return;
    }
    ++in_flight_;
    if (obs::enabled())
      obs::Registry::global().max_gauge("svc.queue_depth",
                                        static_cast<double>(in_flight_));
  }

  const double deadline_ms =
      req.deadline_ms > 0.0 ? req.deadline_ms : config_.default_deadline_ms;
  std::uint64_t deadline_ns = 0;
  if (deadline_ms > 0.0) {
    // Clamp before the float->uint64 cast: a huge (or, from a config,
    // non-finite) deadline would otherwise be UB. ~292 years is plenty.
    constexpr double kMaxDelayNs = 9.2e18;  // < 2^63
    double delay_ns = deadline_ms * 1e6;
    if (!(delay_ns < kMaxDelayNs)) delay_ns = kMaxDelayNs;  // also inf/NaN
    deadline_ns = obs::now_ns() + static_cast<std::uint64_t>(delay_ns);
  }

  util::ThreadPool::shared().submit(
      [this, req = std::move(req), deadline_ns,
       on_response = std::move(on_response)]() mutable {
        run_evaluation(std::move(req), deadline_ns, std::move(on_response));
      });
}

void Service::run_evaluation(Request req, std::uint64_t deadline_ns,
                             std::function<void(std::string)> on_response) {
  obs::ScopedTimer timer("svc.request", {}, /*record_span=*/false,
                         /*record_hist=*/true);
  try {
    if (deadline_ns != 0 && obs::now_ns() > deadline_ns) {
      deadline_expired_.fetch_add(1, std::memory_order_relaxed);
      obs_count("svc.rejected.deadline");
      respond(on_response,
              error_response(req.id, SvcErrorCode::kDeadlineExpired,
                             "deadline expired before evaluation started"),
              /*ok=*/false);
      finish_one();
      return;
    }

    core::RatInputs inputs;
    try {
      if (req.has_file) {
        inputs = io::load_worksheet(req.file);
      } else {
        inputs = core::RatInputs::parse(req.worksheet, "<request>");
        inputs.validate();
      }
    } catch (const core::ParseError& e) {
      respond(on_response, diagnostic_response(req.id, e.diagnostic()),
              /*ok=*/false);
      finish_one();
      return;
    } catch (const std::invalid_argument& e) {
      // validate() rejected a parseable worksheet; same taxonomy as the
      // file loader (E_INVALID_VALUE).
      respond(on_response,
              diagnostic_response(
                  req.id, core::Diagnostic{"<request>", 0, 0,
                                           core::ParseErrorCode::kInvalidValue,
                                           "", e.what()}),
              /*ok=*/false);
      finish_one();
      return;
    }

    const std::string key = canonical_text(inputs);
    const std::uint64_t fp = fnv1a64(key);
    ResultCache::Value cached;
    if (!req.no_cache) cached = cache_.get(key, fp);
    if (!cached) {
      auto computed =
          std::make_shared<const std::vector<core::ThroughputPrediction>>(
              core::predict_all(inputs));
      if (!req.no_cache) {
        const ResultCache::PutOutcome outcome = cache_.put(key, fp, computed);
        // Journal only genuine inserts: a refresh means another worker
        // already computed (and persisted) this exact worksheet.
        if (persist_ &&
            (outcome == ResultCache::PutOutcome::kInserted ||
             outcome == ResultCache::PutOutcome::kInsertedEvicting))
          persist_->append(key, computed);
      }
      cached = std::move(computed);
    }
    respond(on_response, evaluate_response(req.id, fp, inputs, *cached),
            /*ok=*/true);
  } catch (const std::exception& e) {
    respond(on_response, internal_error_response(req.id, e.what()),
            /*ok=*/false);
  } catch (...) {
    respond(on_response,
            internal_error_response(req.id, "unknown internal error"),
            /*ok=*/false);
  }
  finish_one();
}

void Service::finish_one() {
  std::lock_guard lock(mu_);
  if (--in_flight_ == 0) drained_cv_.notify_all();
}

void Service::begin_drain() {
  std::lock_guard lock(mu_);
  draining_ = true;
}

void Service::wait_drained() {
  obs::ScopedTimer timer("svc.drain");
  std::unique_lock lock(mu_);
  drained_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void Service::drain() {
  begin_drain();
  wait_drained();
}

bool Service::draining() const {
  std::lock_guard lock(mu_);
  return draining_;
}

Service::Stats Service::stats() const {
  Stats st;
  st.requests = requests_.load(std::memory_order_relaxed);
  st.responses_ok = responses_ok_.load(std::memory_order_relaxed);
  st.responses_error = responses_error_.load(std::memory_order_relaxed);
  st.rejected_overloaded =
      rejected_overloaded_.load(std::memory_order_relaxed);
  st.rejected_draining = rejected_draining_.load(std::memory_order_relaxed);
  st.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  {
    std::lock_guard lock(mu_);
    st.in_flight = in_flight_;
  }
  st.cache_warmed = warmed_;
  st.cache = cache_.stats();
  return st;
}

std::string Service::stats_response(const std::string& id) const {
  const Stats st = stats();
  std::ostringstream os;
  os << "{\"schema\":\"" << kProtocolSchema << "\",\"id\":";
  if (id.empty())
    os << "null";
  else
    os << io::json_str(id);
  os << ",\"status\":\"ok\",\"op\":\"stats\",\"stats\":{"
     << "\"requests\":" << st.requests
     << ",\"responses_ok\":" << st.responses_ok
     << ",\"responses_error\":" << st.responses_error
     << ",\"rejected_overloaded\":" << st.rejected_overloaded
     << ",\"rejected_draining\":" << st.rejected_draining
     << ",\"deadline_expired\":" << st.deadline_expired
     << ",\"in_flight\":" << st.in_flight << ",\"cache\":{"
     << "\"hits\":" << st.cache.hits << ",\"misses\":" << st.cache.misses
     << ",\"evictions\":" << st.cache.evictions
     << ",\"size\":" << st.cache.size
     << ",\"bytes\":" << st.cache.bytes
     << ",\"capacity\":" << cache_.capacity()
     << ",\"hit_ratio\":" << io::json_number(hit_ratio(st.cache))
     << ",\"warmed\":" << st.cache_warmed << "}}}";
  return os.str();
}

}  // namespace rat::svc
