// Shared file-descriptor plumbing for the svc transports (server.cpp's
// readiness-driven event loop and router.cpp's worker-supervising one).
//
// Every fd the loops own must be non-blocking (the loops never block on
// I/O, only on poll(2)) and close-on-exec (the router fork+execs worker
// processes, and a leaked listen socket or pipe end in a child would
// keep dead connections alive and break EOF-based death detection).
//
// ignore_sigpipe() is here because it is transport-owned policy, not
// app-owned: any process that writes to pipes or sockets whose reader
// can vanish (a --stdio server whose consumer exited, a router whose
// worker died) must see EPIPE from write(2) — a recoverable error the
// flush path turns into a normal connection close — instead of dying
// from the default SIGPIPE disposition mid-drain.
#pragma once

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

namespace rat::svc {

inline void set_nonblock(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

inline void set_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

/// pipe2(O_CLOEXEC) where available, pipe + fcntl otherwise: internal
/// fds must never leak into an exec'd child. Returns false on failure
/// (errno set by pipe/pipe2).
inline bool make_pipe_cloexec(int fds[2]) {
#if defined(__linux__) && defined(O_CLOEXEC)
  if (::pipe2(fds, O_CLOEXEC) == 0) return true;
#endif
  if (::pipe(fds) != 0) return false;
  set_cloexec(fds[0]);
  set_cloexec(fds[1]);
  return true;
}

/// accept4(SOCK_NONBLOCK | SOCK_CLOEXEC) with a portable fallback. The
/// event loops require non-blocking fds from birth, and accepted sockets
/// must not leak into exec'd children.
inline int accept_nonblock_cloexec(int listen_fd) {
#if defined(SOCK_NONBLOCK) && defined(SOCK_CLOEXEC)
  return ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
#else
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd >= 0) {
    set_nonblock(fd);
    set_cloexec(fd);
  }
  return fd;
#endif
}

/// Process-wide SIG_IGN for SIGPIPE (see file comment). Idempotent;
/// called by Server::start() and Router::start() so every transport is
/// covered no matter which entry point spun it up.
inline void ignore_sigpipe() {
  struct sigaction sa {};
  sa.sa_handler = SIG_IGN;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGPIPE, &sa, nullptr);
}

}  // namespace rat::svc
