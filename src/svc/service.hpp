// The long-running RAT prediction service (library side).
//
// Accepts rat.svc.v1 request lines (svc/protocol.hpp), validates
// worksheets through the strict core parser / io loader, executes
// evaluations on the shared util::ThreadPool, and memoizes results in a
// sharded LRU keyed by canonical worksheet fingerprint. Transport is
// someone else's job (svc/server.hpp, or a test calling submit
// directly) — this class is the part every future sharding or
// multi-backend layer plugs into.
//
// Contract: submit() calls on_response with exactly one response line
// per request, in every path —
//
//   * protocol errors, admission rejections (E_OVERLOADED), drain
//     rejections (E_SHUTTING_DOWN) and the ping/stats/shutdown ops are
//     answered inline, on the submitting thread;
//   * evaluations are answered later, on a thread-pool worker.
//
// Admission control: at most queue_capacity evaluations may be queued or
// running; the excess is rejected immediately with a structured
// E_OVERLOADED response instead of queueing unboundedly. Deadlines are
// checked when the evaluation is dequeued: a request that waited past
// its deadline is answered E_DEADLINE_EXPIRED without being evaluated
// (running evaluations are never aborted mid-flight — predict_all is
// microseconds, preemption would cost more than it saves).
//
// Graceful drain: begin_drain() stops admission (subsequent requests get
// E_SHUTTING_DOWN), wait_drained() blocks until every admitted
// evaluation has delivered its response. The destructor drains.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "svc/cache.hpp"
#include "svc/protocol.hpp"

namespace rat::svc {

class PersistentResultCache;

struct ServiceConfig {
  std::size_t cache_capacity = 1024;   ///< result-cache entries (0 = off)
  std::size_t cache_shards = 8;
  std::size_t queue_capacity = 256;    ///< max queued+running evaluations
  double default_deadline_ms = 0.0;    ///< applied when a request sets none
                                       ///< (0 = no deadline)
  /// Durable cache directory (docs/STORE.md). Empty = in-memory only.
  /// When set, the cache is warm-started from the store at construction
  /// and every genuine insert is journaled; construction throws
  /// store::StoreError if the directory is unusable or its snapshot is
  /// corrupt.
  std::string cache_dir{};
};

class Service {
 public:
  struct Stats {
    std::uint64_t requests = 0;          ///< lines submitted
    std::uint64_t responses_ok = 0;
    std::uint64_t responses_error = 0;   ///< all structured errors
    std::uint64_t rejected_overloaded = 0;
    std::uint64_t rejected_draining = 0;
    std::uint64_t deadline_expired = 0;
    std::uint64_t in_flight = 0;         ///< admitted, response not yet sent
    std::uint64_t cache_warmed = 0;      ///< entries restored at startup
    ResultCache::Stats cache;
  };

  explicit Service(ServiceConfig config = {});

  /// Drains: blocks until every admitted evaluation has responded.
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Handle one request line; @p on_response receives exactly one
  /// response line (no trailing newline), inline or from a pool worker
  /// (see file comment). @p on_response must be callable from any
  /// thread and must not throw (exceptions are swallowed and counted).
  void submit(const std::string& line,
              std::function<void(std::string)> on_response);

  /// Invoked (from the submitting thread, after the response) when a
  /// shutdown op arrives. Without a handler, a shutdown op begins
  /// draining directly.
  void set_shutdown_handler(std::function<void()> handler);

  void begin_drain();   ///< stop admitting; idempotent
  void wait_drained();  ///< block until in_flight == 0
  void drain();         ///< begin_drain() + wait_drained()
  bool draining() const;

  Stats stats() const;
  const ServiceConfig& config() const { return config_; }

  /// The stats op's response body (also reachable over the wire).
  std::string stats_response(const std::string& id) const;

 private:
  void run_evaluation(Request request, std::uint64_t deadline_ns,
                      std::function<void(std::string)> on_response);
  void finish_one();
  /// Deliver a response line through @p on_response, counting outcome.
  void respond(const std::function<void(std::string)>& on_response,
               std::string line, bool ok);

  ServiceConfig config_;
  ResultCache cache_;
  std::unique_ptr<PersistentResultCache> persist_;  ///< null when in-memory
  std::size_t warmed_ = 0;

  mutable std::mutex mu_;
  std::condition_variable drained_cv_;
  std::size_t in_flight_ = 0;
  bool draining_ = false;
  std::function<void()> shutdown_handler_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> responses_ok_{0};
  std::atomic<std::uint64_t> responses_error_{0};
  std::atomic<std::uint64_t> rejected_overloaded_{0};
  std::atomic<std::uint64_t> rejected_draining_{0};
  std::atomic<std::uint64_t> deadline_expired_{0};
};

}  // namespace rat::svc
