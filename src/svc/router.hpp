// rat_router: the scale-out front-end for the prediction service.
//
// One router process speaks the existing rat.svc.v1 newline-JSON
// protocol to clients and fans the work out across N rat_serve worker
// processes it spawns and supervises itself (fork + exec, stdio pipes:
// the workers run `--stdio --no-tcp`, so a worker's whole transport is
// two pipe ends owned by the router's event loop). Each worker owns a
// fixed shard of the rat.fp.v1 fingerprint space — requests route by
// `fingerprint % n_workers` — and, when a cache directory is
// configured, its own durable `--cache-dir` shard, so a restarted fleet
// warm-starts shard by shard and a given worksheet always lands on the
// worker that already holds its cached result.
//
// The router reuses the server's event-loop machinery (svc/fdio.hpp:
// non-blocking CLOEXEC fds under one poll(2) loop, buffered partial
// reads/writes, bounded write queues that drop slow clients) on both
// sides: client connections on one side, worker pipes on the other.
// Everything runs on the single loop thread — routing a request is a
// parse + hash, never an evaluation, so the router needs no thread pool.
//
// Forwarding and byte identity: the router rewrites each request's id
// to a private correlation token before forwarding and splices the
// original id back into the worker's response line. Because every
// response head is rendered by the same append_head emitter
// (svc/protocol.cpp), the spliced line is byte-identical to what a
// direct rat_serve would have produced — cache hit or miss, success or
// structured E_* diagnostic, E_OVERLOADED backpressure included, the
// worker's bytes pass through verbatim apart from the id slot.
//
// Supervision: a worker's death (EOF on its stdout pipe) triggers an
// immediate in-place respawn; the replacement deterministically
// inherits the dead worker's hash range, and every request that was
// in flight to the dead worker is re-forwarded to the replacement, so
// an admitted request is answered exactly once even across a kill -9
// (re-evaluation is deterministic and responses carry no hit/miss
// marker, so the retried bytes are identical). A worker that keeps
// dying without ever answering (a broken worker binary) exhausts a
// fast-death budget and its shard is abandoned with structured
// E_INTERNAL responses instead of a respawn storm.
//
// ping / stats fan out to every live worker; stats responses aggregate
// the workers' counters plus the router's own (svc.router.* in obs).
// A shutdown op — or SIGINT/SIGTERM via wake_fd(), exactly like the
// server — drains: stop accepting, stop reading, answer everything in
// flight, then close the workers' stdins so each worker runs its own
// graceful EOF drain, reap them, and exit.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "svc/protocol.hpp"

namespace rat::svc {

struct RouterConfig {
  int port = 0;           ///< loopback TCP (0 = ephemeral, see port())
  int backlog = 64;       ///< listen(2) backlog
  std::size_t n_workers = 4;
  /// argv to exec one worker (typically {rat_serve, "--stdio",
  /// "--no-tcp", ...}); the router appends the per-shard --cache-dir.
  std::vector<std::string> worker_argv;
  /// When set, worker i runs with --cache-dir=<cache_dir>/shard-<i>.
  std::string cache_dir;
  /// When set, rewritten (atomically) after every spawn/respawn: one
  /// worker pid per line in shard order, for scripts that kill workers.
  std::string worker_pid_file;
  std::size_t max_line_bytes = 4u << 20;
  /// Per-client bound on unsent response bytes (slow-client policy,
  /// exactly as ServerConfig::max_write_buffer_bytes).
  std::size_t max_write_buffer_bytes = 4u << 20;
  /// Per-worker bound on bytes queued toward the worker's stdin. A full
  /// worker pipe means the worker has stopped keeping up; new requests
  /// routed to it are rejected with E_OVERLOADED instead of buffering
  /// unboundedly (requests re-forwarded after a death are exempt — they
  /// were already admitted).
  std::size_t max_worker_pipe_bytes = 4u << 20;
  int so_sndbuf = 0;      ///< SO_SNDBUF for accepted client sockets
  int accept_backoff_ms = 50;       ///< EMFILE accept backoff (as Server)
  int drain_flush_timeout_ms = 5000;
  /// Drain: how long workers get to EOF-drain and exit after their
  /// stdins close before they are SIGKILLed so shutdown terminates.
  int worker_exit_timeout_ms = 5000;
  /// Consecutive deaths without a single response before a shard is
  /// abandoned (guards against respawn-storming a broken worker binary).
  int max_fast_deaths = 5;
};

class Router {
 public:
  /// Front-end counters (the svc.router.* metrics, readable without the
  /// obs registry).
  struct Stats {
    std::uint64_t connections = 0;     ///< client sockets accepted
    std::uint64_t requests = 0;        ///< client lines parsed
    std::uint64_t forwarded = 0;       ///< sub-requests sent to workers
    std::uint64_t rerouted = 0;        ///< re-forwarded after a death
    std::uint64_t worker_deaths = 0;   ///< unexpected worker EOFs
    std::uint64_t respawns = 0;        ///< replacement workers spawned
    std::uint64_t overloaded_local = 0;  ///< full worker pipe rejections
    std::uint64_t slow_clients_dropped = 0;
    std::uint64_t responses_dropped = 0;  ///< response to a gone client
    std::uint64_t accept_failures = 0;    ///< accept(2) EMFILE/ENFILE
  };

  explicit Router(RouterConfig config);

  /// Stops, drains and reaps as a backstop when run() never happened.
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Spawn the workers, bind/listen, and start the event loop. Throws
  /// std::system_error when a socket, pipe or fork fails.
  void start();

  /// Bound TCP port (valid after start()).
  int port() const { return port_; }

  /// Write end of the wake pipe for async-signal-safe stop requests,
  /// exactly as Server::wake_fd().
  int wake_fd() const { return wake_w_; }

  void trigger_stop();

  /// Join the loop: blocks until stopped, drained, and every worker has
  /// exited (or been killed after worker_exit_timeout_ms).
  void run();

  Stats stats() const;

  /// Current worker pids in shard order (-1 for an abandoned shard).
  std::vector<pid_t> worker_pids() const;

 private:
  struct Conn;
  struct Worker;
  struct Pending;
  struct Fanout;

  void event_loop();
  void enter_drain();
  void do_accept();
  void handle_client_readable(const std::shared_ptr<Conn>& conn);
  void deliver_lines(const std::shared_ptr<Conn>& conn);
  void route_line(const std::shared_ptr<Conn>& conn, std::string line);
  void start_fanout(const std::shared_ptr<Conn>& conn, const Request& req);
  /// Drain-time conn-less stats broadcast whose aggregate lands in the
  /// obs registry (svc.fleet.* gauges) for the --metrics export.
  void start_internal_stats_fanout();
  void finish_fanout(const std::shared_ptr<Fanout>& fanout);
  void respond_client(const std::shared_ptr<Conn>& conn,
                      const std::string& line);
  void flush_client(const std::shared_ptr<Conn>& conn);
  void drop_slow_client(const std::shared_ptr<Conn>& conn);
  void close_client(Conn& conn);

  bool spawn_worker(std::size_t slot);
  void forward_to(std::size_t slot, const std::string& line);
  void flush_worker(std::size_t slot);
  void handle_worker_readable(std::size_t slot);
  void handle_worker_line(std::size_t slot, std::string line);
  void worker_died(std::size_t slot);
  void abandon_worker(std::size_t slot);
  void reforward_pending(std::size_t slot);
  void close_worker_stdin(std::size_t slot);
  void kill_worker(std::size_t slot);
  void reap_zombies(bool block);
  void write_pid_file();
  std::string next_token();

  RouterConfig config_;

  int listen_fd_ = -1;
  int wake_r_ = -1;
  int wake_w_ = -1;
  int port_ = -1;

  std::thread loop_thread_;

  // Loop-thread-only state.
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::shared_ptr<Conn>> conns_;
  std::map<std::string, Pending> pending_;  ///< token -> in-flight request
  std::uint64_t token_counter_ = 0;
  bool draining_ = false;
  bool workers_stopping_ = false;  ///< drain: worker stdins closed
  bool final_stats_sent_ = false;  ///< drain-time fleet stats sweep done
  std::uint64_t flush_deadline_ns_ = 0;
  std::uint64_t worker_exit_deadline_ns_ = 0;
  std::uint64_t accept_backoff_until_ns_ = 0;
  std::vector<pid_t> zombies_;  ///< dead workers not yet reaped

  mutable std::mutex pids_mu_;
  std::vector<pid_t> pids_;  ///< shard-order snapshot for worker_pids()

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> forwarded_{0};
  std::atomic<std::uint64_t> rerouted_{0};
  std::atomic<std::uint64_t> worker_deaths_{0};
  std::atomic<std::uint64_t> respawns_{0};
  std::atomic<std::uint64_t> overloaded_local_{0};
  std::atomic<std::uint64_t> slow_clients_dropped_{0};
  std::atomic<std::uint64_t> responses_dropped_{0};
  std::atomic<std::uint64_t> accept_failures_{0};

  bool started_ = false;
  bool ran_ = false;
};

// ---- Routing helpers (unit-tested and benchmarked directly) ----

/// The routing key for one parsed request: the rat.fp.v1 canonical
/// fingerprint when the inline worksheet parses (so every formatting of
/// one design routes to the worker holding its cached result), the hash
/// of the raw worksheet text when it does not (the owning worker will
/// produce the structured diagnostic), and the hash of the path for
/// server-side `file` requests.
std::uint64_t route_fingerprint(const Request& req);

/// Re-encode @p req as a rat.svc.v1 line carrying @p token as its id.
/// Faithful: worksheet/file text verbatim (so the worker's diagnostics
/// and fingerprints match a direct submission), deadline and no_cache
/// preserved.
std::string encode_forward(const std::string& token, const Request& req);

/// The correlation token a worker response line carries, or empty when
/// the line does not start with the canonical response head (corrupt or
/// non-protocol output — the router drops such lines).
std::string response_token(const std::string& line);

/// @p line with its leading "id":"<token>" replaced by the original
/// client id (JSON string, or null when the client sent none) — the
/// exact bytes append_head would have rendered for a direct request.
std::string restore_response_id(const std::string& line,
                                const std::string& orig_id);

}  // namespace rat::svc
