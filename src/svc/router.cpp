#include "svc/router.hpp"

#include <errno.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <system_error>

#include "core/parameters.hpp"
#include "io/diagnostics.hpp"
#include "io/json.hpp"
#include "obs/metrics.hpp"
#include "svc/cache.hpp"
#include "svc/fdio.hpp"
#include "svc/fingerprint.hpp"

namespace rat::svc {

namespace {

void obs_count(const char* name) {
  if (obs::enabled()) obs::Registry::global().add_counter(name);
}

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

/// The canonical response-line prefix up to and including the opening
/// quote of a string id — every worker response to a forwarded request
/// starts with exactly these bytes, because the router's correlation
/// tokens are never empty (an empty id would render as null).
const std::string& response_head_prefix() {
  static const std::string head =
      std::string("{\"schema\":\"") + kProtocolSchema + "\",\"id\":\"";
  return head;
}

}  // namespace

// ---- Routing helpers ----

std::uint64_t route_fingerprint(const Request& req) {
  if (req.has_file) {
    // Server-side paths are resolved by the worker; the path string is
    // the only stable routing key available without touching the disk.
    return fnv1a64("file:" + req.file);
  }
  try {
    return fingerprint(core::RatInputs::parse(req.worksheet));
  } catch (const std::exception&) {
    // Unparseable worksheet: the owning worker will produce the
    // structured diagnostic. Hashing the raw text keeps repeats of the
    // same bad request on one worker (and its E_BAD_REQUEST formatting
    // deterministic) without the router duplicating parser policy.
    return fnv1a64(req.worksheet);
  }
}

std::string encode_forward(const std::string& token, const Request& req) {
  std::ostringstream os;
  os << "{\"id\":" << io::json_str(token) << ",\"op\":\"";
  switch (req.op) {
    case Request::Op::kEvaluate: os << "evaluate"; break;
    case Request::Op::kPing: os << "ping"; break;
    case Request::Op::kStats: os << "stats"; break;
    case Request::Op::kShutdown: os << "shutdown"; break;
  }
  os << '"';
  if (req.has_worksheet)
    os << ",\"worksheet\":" << io::json_str(req.worksheet);
  if (req.has_file) os << ",\"file\":" << io::json_str(req.file);
  if (req.deadline_ms > 0.0)
    os << ",\"deadline_ms\":" << io::json_number(req.deadline_ms);
  if (req.no_cache) os << ",\"no_cache\":true";
  os << '}';
  return os.str();
}

std::string response_token(const std::string& line) {
  const std::string& head = response_head_prefix();
  if (line.size() <= head.size() ||
      line.compare(0, head.size(), head) != 0)
    return {};
  const std::size_t end = line.find('"', head.size());
  if (end == std::string::npos) return {};
  return line.substr(head.size(), end - head.size());
}

std::string restore_response_id(const std::string& line,
                                const std::string& orig_id) {
  const std::string& head = response_head_prefix();
  const std::size_t end = line.find('"', head.size());
  // Everything before the id value is append_head's fixed text, so the
  // splice reproduces a direct server's bytes exactly: ids render via
  // the same io::json_str, empty ids as null.
  std::string out;
  out.reserve(line.size() + orig_id.size());
  out.append(head, 0, head.size() - 1);  // drop the opening quote
  if (orig_id.empty())
    out += "null";
  else
    out += io::json_str(orig_id);
  out.append(line, end + 1, std::string::npos);
  return out;
}

// ---- Internal structures ----

/// One client connection; the mirror of Server::Connection, minus the
/// stdio special case (the router is TCP-only — its own stdio is the
/// operator's terminal, and its workers' stdio belongs to the router).
struct Router::Conn {
  int fd = -1;
  bool read_shut = false;
  bool close_when_idle = false;
  bool dead = false;
  std::size_t outstanding = 0;  ///< forwarded requests awaiting a response
  std::string rbuf;
  std::string wbuf;
  std::size_t woff = 0;

  std::size_t pending() const { return wbuf.size() - woff; }
};

/// One supervised worker process and its two pipe ends.
struct Router::Worker {
  pid_t pid = -1;
  int to_fd = -1;    ///< write end of the worker's stdin pipe
  int from_fd = -1;  ///< read end of the worker's stdout pipe
  bool alive = false;
  bool abandoned = false;     ///< fast-death budget exhausted; no respawn
  bool stdin_closed = false;  ///< drain: EOF sent, worker is exiting
  bool responded_since_spawn = false;
  int fast_deaths = 0;
  std::string rbuf;
  std::string wbuf;  ///< outbound request lines; [woff, size) unsent
  std::size_t woff = 0;

  std::size_t pending() const { return wbuf.size() - woff; }
};

/// One forwarded request awaiting its worker response.
struct Router::Pending {
  std::shared_ptr<Conn> conn;
  std::string orig_id;
  std::size_t worker = 0;
  std::string fwd_line;  ///< token-bearing request (no newline), kept so
                         ///< a worker death can re-forward it verbatim
  std::shared_ptr<Fanout> fanout;  ///< null for evaluate
};

/// A ping/stats broadcast in flight: one sub-request per live worker,
/// one aggregated client response once the last one lands. Internal
/// fanouts (the drain-time stats sweep feeding --metrics) have no
/// client connection; their aggregate goes to the obs registry instead.
struct Router::Fanout {
  std::shared_ptr<Conn> conn;  ///< null when internal
  std::string orig_id;
  Request::Op op = Request::Op::kPing;
  bool internal = false;
  std::size_t remaining = 0;
  // Summed worker stats (the stats op's aggregation).
  std::uint64_t requests = 0, responses_ok = 0, responses_error = 0,
                rejected_overloaded = 0, rejected_draining = 0,
                deadline_expired = 0, in_flight = 0;
  std::uint64_t hits = 0, misses = 0, evictions = 0, size = 0, bytes = 0,
                capacity = 0, warmed = 0;
};

// ---- Lifecycle ----

Router::Router(RouterConfig config) : config_(std::move(config)) {
  if (config_.n_workers == 0) config_.n_workers = 1;
  int fds[2];
  if (!make_pipe_cloexec(fds)) throw_errno("svc::Router: pipe");
  wake_r_ = fds[0];
  wake_w_ = fds[1];
  // Non-blocking write end: a signal handler must never block on a full
  // pipe; one byte is enough to latch the stop request.
  set_nonblock(wake_w_);
}

Router::~Router() {
  if (started_ && !ran_) {
    // Backstop for tests/errors that never called run().
    trigger_stop();
    run();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::close(wake_r_);
  ::close(wake_w_);
}

void Router::trigger_stop() {
  const char byte = 's';
  [[maybe_unused]] ssize_t n = ::write(wake_w_, &byte, 1);
}

void Router::start() {
  if (config_.worker_argv.empty())
    throw std::invalid_argument("svc::Router: worker_argv must not be empty");
  // Router-owned for the same reason it is server-owned: a dead worker's
  // stdin pipe must surface as EPIPE from write(2) (handled as a death,
  // respawn + re-forward), never as a fatal SIGPIPE.
  ignore_sigpipe();

  {
    std::lock_guard lock(pids_mu_);
    pids_.assign(config_.n_workers, -1);
  }
  workers_.clear();
  for (std::size_t i = 0; i < config_.n_workers; ++i)
    workers_.push_back(std::make_unique<Worker>());
  for (std::size_t i = 0; i < config_.n_workers; ++i)
    if (!spawn_worker(i)) throw_errno("svc::Router: spawn worker");

#if defined(SOCK_NONBLOCK) && defined(SOCK_CLOEXEC)
  listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
#else
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ >= 0) {
    set_nonblock(listen_fd_);
    set_cloexec(listen_fd_);
  }
#endif
  if (listen_fd_ < 0) throw_errno("svc::Router: socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0)
    throw_errno("svc::Router: bind 127.0.0.1");
  if (::listen(listen_fd_, config_.backlog > 0 ? config_.backlog : 1) != 0)
    throw_errno("svc::Router: listen");
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0)
    throw_errno("svc::Router: getsockname");
  port_ = ntohs(addr.sin_port);

  loop_thread_ = std::thread([this] { event_loop(); });
  started_ = true;
}

void Router::run() {
  if (loop_thread_.joinable()) loop_thread_.join();
  ran_ = true;
}

Router::Stats Router::stats() const {
  Stats st;
  st.connections = connections_.load(std::memory_order_relaxed);
  st.requests = requests_.load(std::memory_order_relaxed);
  st.forwarded = forwarded_.load(std::memory_order_relaxed);
  st.rerouted = rerouted_.load(std::memory_order_relaxed);
  st.worker_deaths = worker_deaths_.load(std::memory_order_relaxed);
  st.respawns = respawns_.load(std::memory_order_relaxed);
  st.overloaded_local = overloaded_local_.load(std::memory_order_relaxed);
  st.slow_clients_dropped =
      slow_clients_dropped_.load(std::memory_order_relaxed);
  st.responses_dropped = responses_dropped_.load(std::memory_order_relaxed);
  st.accept_failures = accept_failures_.load(std::memory_order_relaxed);
  return st;
}

std::vector<pid_t> Router::worker_pids() const {
  std::lock_guard lock(pids_mu_);
  return pids_;
}

// ---- Worker supervision ----

bool Router::spawn_worker(std::size_t slot) {
  Worker& w = *workers_[slot];
  int in_pipe[2];   // router -> worker stdin
  int out_pipe[2];  // worker stdout -> router
  if (!make_pipe_cloexec(in_pipe)) return false;
  if (!make_pipe_cloexec(out_pipe)) {
    ::close(in_pipe[0]);
    ::close(in_pipe[1]);
    return false;
  }

  // Build argv before fork: between fork and exec only async-signal-safe
  // calls are allowed (and the sanitizers enforce the spirit of that),
  // so no allocation may happen in the child.
  std::vector<std::string> args = config_.worker_argv;
  if (!config_.cache_dir.empty())
    args.push_back("--cache-dir=" + config_.cache_dir + "/shard-" +
                   std::to_string(slot));
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (auto& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(in_pipe[0]);
    ::close(in_pipe[1]);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    return false;
  }
  if (pid == 0) {
    // Child: wire the pipes onto stdio and become the worker. dup2
    // clears CLOEXEC on the duplicates; every other router fd (pipes,
    // sockets, other workers' ends) is CLOEXEC and vanishes at exec.
    ::dup2(in_pipe[0], STDIN_FILENO);
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::execvp(argv[0], argv.data());
    _exit(127);  // exec failed; the fast-death budget reports it
  }

  ::close(in_pipe[0]);
  ::close(out_pipe[1]);
  set_nonblock(in_pipe[1]);
  set_nonblock(out_pipe[0]);
  w.pid = pid;
  w.to_fd = in_pipe[1];
  w.from_fd = out_pipe[0];
  w.alive = true;
  w.abandoned = false;
  w.stdin_closed = false;
  w.responded_since_spawn = false;
  w.rbuf.clear();
  w.wbuf.clear();
  w.woff = 0;
  {
    std::lock_guard lock(pids_mu_);
    pids_[slot] = pid;
  }
  write_pid_file();
  return true;
}

void Router::write_pid_file() {
  if (config_.worker_pid_file.empty()) return;
  std::vector<pid_t> pids;
  {
    std::lock_guard lock(pids_mu_);
    pids = pids_;
  }
  // Write-then-rename so a script killing workers never reads a torn
  // file mid-respawn.
  const std::string tmp = config_.worker_pid_file + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    for (pid_t pid : pids) out << pid << '\n';
  }
  std::rename(tmp.c_str(), config_.worker_pid_file.c_str());
}

void Router::forward_to(std::size_t slot, const std::string& line) {
  Worker& w = *workers_[slot];
  w.wbuf += line;
  w.wbuf += '\n';
  flush_worker(slot);
}

void Router::flush_worker(std::size_t slot) {
  Worker& w = *workers_[slot];
  if (!w.alive || w.stdin_closed) return;
  while (w.pending() > 0) {
    const ssize_t n =
        ::write(w.to_fd, w.wbuf.data() + w.woff, w.pending());
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      // EPIPE: the worker died with requests still queued toward it.
      // Death handling (respawn + re-forward from the pending map) runs
      // off the stdout EOF, which is already on its way; the stale
      // queue is dropped here.
      w.wbuf.clear();
      w.woff = 0;
      return;
    }
    w.woff += static_cast<std::size_t>(n);
  }
  if (w.pending() == 0) {
    w.wbuf.clear();
    w.woff = 0;
  } else if (w.woff >= 65536) {
    w.wbuf.erase(0, w.woff);
    w.woff = 0;
  }
}

void Router::handle_worker_readable(std::size_t slot) {
  Worker& w = *workers_[slot];
  char chunk[65536];
  const ssize_t n = ::read(w.from_fd, chunk, sizeof chunk);
  if (n < 0) {
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) return;
    worker_died(slot);
    return;
  }
  if (n == 0) {
    // EOF is the death signal: the worker's stdout write end only closes
    // when the process exits (or execs away every fd, which a worker
    // never does). A partial trailing line is corruption and drops.
    worker_died(slot);
    return;
  }
  w.rbuf.append(chunk, static_cast<std::size_t>(n));
  std::size_t start = 0;
  for (;;) {
    const std::size_t nl = w.rbuf.find('\n', start);
    if (nl == std::string::npos) break;
    handle_worker_line(slot, w.rbuf.substr(start, nl - start));
    start = nl + 1;
  }
  w.rbuf.erase(0, start);
  if (w.rbuf.size() > config_.max_line_bytes) {
    // A worker emitting an unbounded non-line is broken protocol; kill
    // it and let the death path take over.
    kill_worker(slot);
  }
}

void Router::handle_worker_line(std::size_t slot, std::string line) {
  Worker& w = *workers_[slot];
  const std::string token = response_token(line);
  if (token.empty()) return;  // not a correlated response line; drop
  const auto it = pending_.find(token);
  if (it == pending_.end()) return;  // duplicate or stale; drop
  w.responded_since_spawn = true;
  Pending p = std::move(it->second);
  pending_.erase(it);

  if (p.fanout) {
    Fanout& f = *p.fanout;
    if (f.op == Request::Op::kStats) {
      // Best-effort accumulation: a malformed worker stats line simply
      // contributes nothing to the sums.
      try {
        const io::JsonValue doc = io::parse_json(line);
        if (const io::JsonValue* st = doc.find("stats");
            st && st->is_object()) {
          for (const auto& [key, value] : st->object) {
            if (key == "cache" && value.is_object()) {
              for (const auto& [ck, cv] : value.object) {
                if (!cv.is_number()) continue;
                const auto v = static_cast<std::uint64_t>(cv.number);
                if (ck == "hits") f.hits += v;
                else if (ck == "misses") f.misses += v;
                else if (ck == "evictions") f.evictions += v;
                else if (ck == "size") f.size += v;
                else if (ck == "bytes") f.bytes += v;
                else if (ck == "capacity") f.capacity += v;
                else if (ck == "warmed") f.warmed += v;
              }
              continue;
            }
            if (!value.is_number()) continue;
            const auto v = static_cast<std::uint64_t>(value.number);
            if (key == "requests") f.requests += v;
            else if (key == "responses_ok") f.responses_ok += v;
            else if (key == "responses_error") f.responses_error += v;
            else if (key == "rejected_overloaded") f.rejected_overloaded += v;
            else if (key == "rejected_draining") f.rejected_draining += v;
            else if (key == "deadline_expired") f.deadline_expired += v;
            else if (key == "in_flight") f.in_flight += v;
          }
        }
      } catch (const std::exception&) {
      }
    }
    if (f.remaining > 0) --f.remaining;
    if (f.remaining == 0) finish_fanout(p.fanout);
    return;
  }

  --p.conn->outstanding;
  respond_client(p.conn, restore_response_id(line, p.orig_id));
}

void Router::worker_died(std::size_t slot) {
  Worker& w = *workers_[slot];
  if (!w.alive) return;
  w.alive = false;
  ::close(w.from_fd);
  w.from_fd = -1;
  if (!w.stdin_closed) {
    ::close(w.to_fd);
    w.to_fd = -1;
    w.stdin_closed = true;
  }
  w.rbuf.clear();
  w.wbuf.clear();
  w.woff = 0;
  zombies_.push_back(w.pid);
  {
    std::lock_guard lock(pids_mu_);
    pids_[slot] = -1;
  }
  if (workers_stopping_) return;  // drain: this EOF is the expected exit

  worker_deaths_.fetch_add(1, std::memory_order_relaxed);
  obs_count("svc.router.worker_death");
  if (w.responded_since_spawn)
    w.fast_deaths = 0;
  else
    ++w.fast_deaths;
  if (w.fast_deaths >= config_.max_fast_deaths) {
    // Dying over and over without a single response means the worker
    // binary itself is broken (bad path, bad flags, instant crash);
    // respawning forever would be a fork storm, not fault tolerance.
    abandon_worker(slot);
    return;
  }
  if (!spawn_worker(slot)) {
    abandon_worker(slot);
    return;
  }
  respawns_.fetch_add(1, std::memory_order_relaxed);
  obs_count("svc.router.respawn");
  reforward_pending(slot);
}

void Router::reforward_pending(std::size_t slot) {
  // The replacement inherits the dead worker's hash range, so every
  // in-flight request re-forwards to the same slot — deterministic
  // rebalance, and deterministic evaluation makes the retried response
  // byte-identical to what the dead worker would have sent. The pending
  // map guarantees exactly-once delivery to the client either way.
  for (const auto& [token, p] : pending_) {
    if (p.worker != slot) continue;
    rerouted_.fetch_add(1, std::memory_order_relaxed);
    obs_count("svc.router.rerouted");
    forward_to(slot, p.fwd_line);
  }
}

void Router::abandon_worker(std::size_t slot) {
  Worker& w = *workers_[slot];
  w.abandoned = true;
  obs_count("svc.router.worker_abandoned");
  // Answer everything that was in flight to the shard; an admitted
  // request is never silently dropped.
  std::vector<std::string> tokens;
  for (const auto& [token, p] : pending_)
    if (p.worker == slot) tokens.push_back(token);
  for (const auto& token : tokens) {
    const auto it = pending_.find(token);
    if (it == pending_.end()) continue;
    Pending p = std::move(it->second);
    pending_.erase(it);
    if (p.fanout) {
      if (p.fanout->remaining > 0) --p.fanout->remaining;
      if (p.fanout->remaining == 0) finish_fanout(p.fanout);
      continue;
    }
    --p.conn->outstanding;
    respond_client(p.conn,
                   internal_error_response(
                       p.orig_id, "worker for this shard is unavailable"));
  }
}

void Router::close_worker_stdin(std::size_t slot) {
  Worker& w = *workers_[slot];
  if (!w.alive || w.stdin_closed) return;
  // EOF on stdin is the worker's own graceful-drain trigger: it answers
  // what it admitted, flushes stdout, and exits 0.
  ::close(w.to_fd);
  w.to_fd = -1;
  w.stdin_closed = true;
  w.wbuf.clear();
  w.woff = 0;
}

void Router::kill_worker(std::size_t slot) {
  Worker& w = *workers_[slot];
  if (w.alive && w.pid > 0) ::kill(w.pid, SIGKILL);
}

void Router::reap_zombies(bool block) {
  auto it = zombies_.begin();
  while (it != zombies_.end()) {
    int status = 0;
    const pid_t r = ::waitpid(*it, &status, block ? 0 : WNOHANG);
    if (r == *it || (r < 0 && errno == ECHILD))
      it = zombies_.erase(it);
    else
      ++it;
  }
}

// ---- Client side ----

void Router::do_accept() {
  for (;;) {
    const int fd = accept_nonblock_cloexec(listen_fd_);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Same policy as the server: back off instead of poll-spinning
        // on the still-readable listen fd.
        accept_failures_.fetch_add(1, std::memory_order_relaxed);
        obs_count("svc.router.accept_failed");
        accept_backoff_until_ns_ =
            obs::now_ns() +
            static_cast<std::uint64_t>(config_.accept_backoff_ms > 0
                                           ? config_.accept_backoff_ms
                                           : 1) *
                1'000'000ull;
        return;
      }
      return;  // EAGAIN: everything pending was accepted
    }
    if (config_.so_sndbuf > 0)
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &config_.so_sndbuf,
                   sizeof config_.so_sndbuf);
    connections_.fetch_add(1, std::memory_order_relaxed);
    obs_count("svc.router.connections");
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conns_.push_back(std::move(conn));
  }
}

void Router::handle_client_readable(const std::shared_ptr<Conn>& conn) {
  char chunk[65536];
  const ssize_t n = ::read(conn->fd, chunk, sizeof chunk);
  if (n < 0) {
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) return;
    close_client(*conn);  // client went away; its responses drop
    return;
  }
  if (n == 0) {
    // EOF. A final unterminated line still counts as a request, then the
    // connection half-closes: every owed response still flushes.
    if (!conn->rbuf.empty()) {
      std::string line;
      line.swap(conn->rbuf);
      route_line(conn, std::move(line));
    }
    conn->read_shut = true;
    conn->close_when_idle = true;
    return;
  }
  conn->rbuf.append(chunk, static_cast<std::size_t>(n));
  deliver_lines(conn);
}

void Router::deliver_lines(const std::shared_ptr<Conn>& conn) {
  std::size_t start = 0;
  bool oversize = false;
  for (;;) {
    const std::size_t nl = conn->rbuf.find('\n', start);
    if (nl == std::string::npos) break;
    if (nl - start > config_.max_line_bytes) {
      oversize = true;
      break;
    }
    route_line(conn, conn->rbuf.substr(start, nl - start));
    start = nl + 1;
  }
  conn->rbuf.erase(0, start);
  if (oversize || conn->rbuf.size() > config_.max_line_bytes) {
    respond_client(
        conn, error_response("", SvcErrorCode::kBadRequest,
                             "request line exceeds " +
                                 std::to_string(config_.max_line_bytes) +
                                 " bytes"));
    conn->rbuf.clear();
    conn->read_shut = true;
    conn->close_when_idle = true;
  }
}

void Router::route_line(const std::shared_ptr<Conn>& conn,
                        std::string line) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  obs_count("svc.router.requests");

  Request req;
  try {
    req = parse_request(line);
  } catch (const ProtocolError& e) {
    // Same renderer + same parser => the same bytes a direct worker
    // would have produced; no need to burn a round-trip on it.
    respond_client(conn, error_response(e.id(), e.code(), e.what()));
    return;
  }

  switch (req.op) {
    case Request::Op::kPing:
    case Request::Op::kStats:
      start_fanout(conn, req);
      return;
    case Request::Op::kShutdown:
      // Ack first (the bytes a direct server sends), then drain the
      // whole fleet via the wake pipe — the same latch signals use —
      // so the response still flushes: drain only stops reads.
      respond_client(conn, shutdown_response(req.id));
      trigger_stop();
      return;
    case Request::Op::kEvaluate:
      break;
  }

  const std::uint64_t fp = route_fingerprint(req);
  const std::size_t slot = static_cast<std::size_t>(fp % config_.n_workers);
  Worker& w = *workers_[slot];
  if (w.abandoned) {
    respond_client(conn,
                   internal_error_response(
                       req.id, "worker for this shard is unavailable"));
    return;
  }
  if (w.pending() > config_.max_worker_pipe_bytes) {
    // The shard owner has stopped draining its stdin: local admission
    // control, same contract as the service's bounded queue.
    overloaded_local_.fetch_add(1, std::memory_order_relaxed);
    obs_count("svc.router.overloaded_local");
    respond_client(conn,
                   error_response(req.id, SvcErrorCode::kOverloaded,
                                  "worker pipe full; retry later"));
    return;
  }

  const std::string token = next_token();
  Pending p;
  p.conn = conn;
  p.orig_id = req.id;
  p.worker = slot;
  p.fwd_line = encode_forward(token, req);
  ++conn->outstanding;
  forwarded_.fetch_add(1, std::memory_order_relaxed);
  obs_count("svc.router.forwarded");
  const std::string& fwd = pending_.emplace(token, std::move(p))
                               .first->second.fwd_line;
  forward_to(slot, fwd);
}

void Router::start_fanout(const std::shared_ptr<Conn>& conn,
                          const Request& req) {
  auto fanout = std::make_shared<Fanout>();
  fanout->conn = conn;
  fanout->orig_id = req.id;
  fanout->op = req.op;
  ++conn->outstanding;
  for (std::size_t slot = 0; slot < workers_.size(); ++slot) {
    Worker& w = *workers_[slot];
    if (!w.alive || w.abandoned || w.stdin_closed) continue;
    const std::string token = next_token();
    Pending p;
    p.conn = conn;
    p.orig_id = req.id;
    p.worker = slot;
    p.fwd_line = encode_forward(token, req);
    p.fanout = fanout;
    ++fanout->remaining;
    forwarded_.fetch_add(1, std::memory_order_relaxed);
    obs_count("svc.router.forwarded");
    const std::string& fwd = pending_.emplace(token, std::move(p))
                                 .first->second.fwd_line;
    forward_to(slot, fwd);
  }
  if (fanout->remaining == 0) finish_fanout(fanout);
}

void Router::start_internal_stats_fanout() {
  // Same wire mechanics as a client stats broadcast, but conn-less: the
  // sub-requests ride the normal Pending map, so drain phase 1's
  // "pending_ empty" gate naturally waits for the answers before worker
  // stdins close (and the flush-deadline backstop cancels them the same
  // way if a worker hangs).
  auto fanout = std::make_shared<Fanout>();
  fanout->op = Request::Op::kStats;
  fanout->internal = true;
  Request req;
  req.op = Request::Op::kStats;
  for (std::size_t slot = 0; slot < workers_.size(); ++slot) {
    Worker& w = *workers_[slot];
    if (!w.alive || w.abandoned || w.stdin_closed) continue;
    const std::string token = next_token();
    Pending p;
    p.orig_id = req.id;
    p.worker = slot;
    p.fwd_line = encode_forward(token, req);
    p.fanout = fanout;
    ++fanout->remaining;
    const std::string& fwd = pending_.emplace(token, std::move(p))
                                 .first->second.fwd_line;
    forward_to(slot, fwd);
  }
  if (fanout->remaining == 0) finish_fanout(fanout);
}

void Router::finish_fanout(const std::shared_ptr<Fanout>& fanout) {
  Fanout& f = *fanout;
  if (f.internal) {
    // Drain-time sweep: flush the fleet-wide sums into the registry so
    // the --metrics file carries what the workers saw, not just the
    // front-end's own counters. Gauges, not counters: these are
    // terminal absolute values read once at export.
    obs::Registry& r = obs::Registry::global();
    r.set_gauge("svc.fleet.requests", static_cast<double>(f.requests));
    r.set_gauge("svc.fleet.responses_ok",
                static_cast<double>(f.responses_ok));
    r.set_gauge("svc.fleet.responses_error",
                static_cast<double>(f.responses_error));
    r.set_gauge("svc.fleet.rejected_overloaded",
                static_cast<double>(f.rejected_overloaded));
    r.set_gauge("svc.fleet.rejected_draining",
                static_cast<double>(f.rejected_draining));
    r.set_gauge("svc.fleet.deadline_expired",
                static_cast<double>(f.deadline_expired));
    r.set_gauge("svc.fleet.cache.hits", static_cast<double>(f.hits));
    r.set_gauge("svc.fleet.cache.misses", static_cast<double>(f.misses));
    r.set_gauge("svc.fleet.cache.evictions",
                static_cast<double>(f.evictions));
    r.set_gauge("svc.fleet.cache.size", static_cast<double>(f.size));
    r.set_gauge("svc.fleet.cache.bytes", static_cast<double>(f.bytes));
    r.set_gauge("svc.fleet.cache.warmed", static_cast<double>(f.warmed));
    std::size_t alive = 0;
    for (const auto& w : workers_)
      if (w->alive && !w->abandoned) ++alive;
    r.set_gauge("svc.fleet.workers_alive", static_cast<double>(alive));
    return;
  }
  --f.conn->outstanding;
  if (f.op == Request::Op::kPing) {
    respond_client(f.conn, pong_response(f.orig_id));
    return;
  }
  std::size_t alive = 0;
  for (const auto& w : workers_)
    if (w->alive && !w->abandoned) ++alive;
  ResultCache::Stats cs;
  cs.hits = f.hits;
  cs.misses = f.misses;
  std::ostringstream os;
  os << "{\"schema\":\"" << kProtocolSchema << "\",\"id\":";
  if (f.orig_id.empty())
    os << "null";
  else
    os << io::json_str(f.orig_id);
  // The "stats" object sums the workers' counters in the worker key
  // order; "router" carries the front-end's own.
  os << ",\"status\":\"ok\",\"op\":\"stats\",\"stats\":{"
     << "\"requests\":" << f.requests
     << ",\"responses_ok\":" << f.responses_ok
     << ",\"responses_error\":" << f.responses_error
     << ",\"rejected_overloaded\":" << f.rejected_overloaded
     << ",\"rejected_draining\":" << f.rejected_draining
     << ",\"deadline_expired\":" << f.deadline_expired
     << ",\"in_flight\":" << f.in_flight << ",\"cache\":{"
     << "\"hits\":" << f.hits << ",\"misses\":" << f.misses
     << ",\"evictions\":" << f.evictions << ",\"size\":" << f.size
     << ",\"bytes\":" << f.bytes << ",\"capacity\":" << f.capacity
     << ",\"hit_ratio\":" << io::json_number(hit_ratio(cs))
     << ",\"warmed\":" << f.warmed << "}}"
     << ",\"router\":{\"workers\":" << config_.n_workers
     << ",\"alive\":" << alive
     << ",\"connections\":" << connections_.load(std::memory_order_relaxed)
     << ",\"requests\":" << requests_.load(std::memory_order_relaxed)
     << ",\"forwarded\":" << forwarded_.load(std::memory_order_relaxed)
     << ",\"rerouted\":" << rerouted_.load(std::memory_order_relaxed)
     << ",\"worker_deaths\":"
     << worker_deaths_.load(std::memory_order_relaxed)
     << ",\"respawns\":" << respawns_.load(std::memory_order_relaxed)
     << ",\"overloaded_local\":"
     << overloaded_local_.load(std::memory_order_relaxed)
     << ",\"slow_clients_dropped\":"
     << slow_clients_dropped_.load(std::memory_order_relaxed)
     << ",\"responses_dropped\":"
     << responses_dropped_.load(std::memory_order_relaxed)
     << ",\"accept_failures\":"
     << accept_failures_.load(std::memory_order_relaxed) << "}}";
  respond_client(f.conn, os.str());
}

void Router::respond_client(const std::shared_ptr<Conn>& conn,
                            const std::string& line) {
  if (conn->dead) {
    responses_dropped_.fetch_add(1, std::memory_order_relaxed);
    obs_count("svc.router.responses_dropped");
    return;
  }
  conn->wbuf += line;
  conn->wbuf += '\n';
  flush_client(conn);
  if (!conn->dead && conn->pending() > config_.max_write_buffer_bytes)
    drop_slow_client(conn);
}

void Router::flush_client(const std::shared_ptr<Conn>& conn) {
  while (conn->pending() > 0) {
    const ssize_t n = ::send(conn->fd, conn->wbuf.data() + conn->woff,
                             conn->pending(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_client(*conn);  // reader gone; remaining responses drop
      return;
    }
    conn->woff += static_cast<std::size_t>(n);
  }
  if (conn->pending() == 0) {
    conn->wbuf.clear();
    conn->woff = 0;
  } else if (conn->woff >= 65536) {
    conn->wbuf.erase(0, conn->woff);
    conn->woff = 0;
  }
}

void Router::drop_slow_client(const std::shared_ptr<Conn>& conn) {
  slow_clients_dropped_.fetch_add(1, std::memory_order_relaxed);
  obs_count("svc.router.slow_client_dropped");
  close_client(*conn);
}

void Router::close_client(Conn& conn) {
  if (conn.dead) return;
  conn.dead = true;
  conn.wbuf.clear();
  conn.woff = 0;
  ::close(conn.fd);
  conn.fd = -1;
}

// ---- Event loop ----

void Router::enter_drain() {
  if (draining_) return;
  draining_ = true;
  // 1. Stop accepting.
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // 2. Stop reading; connections stay open so responses still flow.
  for (const auto& c : conns_) c->read_shut = true;
  flush_deadline_ns_ =
      obs::now_ns() +
      static_cast<std::uint64_t>(config_.drain_flush_timeout_ms > 0
                                     ? config_.drain_flush_timeout_ms
                                     : 0) *
          1'000'000ull;
}

void Router::event_loop() {
  std::optional<obs::ScopedTimer> shutdown_timer;
  struct Slot {
    enum Kind { kConn, kWorkerIn, kWorkerOut } kind;
    std::size_t index;
  };
  std::vector<pollfd> pfds;
  std::vector<Slot> slots;  // pfds[fixed+i] -> slots[i]
  std::vector<std::shared_ptr<Conn>> conn_refs;

  for (;;) {
    reap_zombies(false);

    pfds.clear();
    slots.clear();
    conn_refs.clear();

    // The wake pipe is latching (never read), so it is polled only until
    // the drain starts — afterwards it would spin the loop.
    int wake_idx = -1;
    if (!draining_) {
      wake_idx = static_cast<int>(pfds.size());
      pfds.push_back({wake_r_, POLLIN, 0});
    }
    int backoff_ms = -1;
    if (accept_backoff_until_ns_ != 0) {
      const std::uint64_t now = obs::now_ns();
      if (now >= accept_backoff_until_ns_) {
        accept_backoff_until_ns_ = 0;
      } else {
        backoff_ms = static_cast<int>(
            (accept_backoff_until_ns_ - now + 999'999) / 1'000'000);
        if (backoff_ms < 1) backoff_ms = 1;
      }
    }
    int listen_idx = -1;
    if (!draining_ && listen_fd_ >= 0 && accept_backoff_until_ns_ == 0) {
      listen_idx = static_cast<int>(pfds.size());
      pfds.push_back({listen_fd_, POLLIN, 0});
    }
    const std::size_t fixed = pfds.size();

    for (std::size_t i = 0; i < conns_.size(); ++i) {
      const auto& c = conns_[i];
      if (c->dead) continue;
      const bool want_read = !c->read_shut;
      const bool want_write = c->pending() > 0;
      if (!want_read && !want_write) continue;
      pfds.push_back({c->fd,
                      static_cast<short>((want_read ? POLLIN : 0) |
                                         (want_write ? POLLOUT : 0)),
                      0});
      slots.push_back({Slot::kConn, conn_refs.size()});
      conn_refs.push_back(c);
    }
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      const Worker& w = *workers_[i];
      if (!w.alive) continue;
      pfds.push_back({w.from_fd, POLLIN, 0});
      slots.push_back({Slot::kWorkerOut, i});
      if (!w.stdin_closed && w.pending() > 0) {
        pfds.push_back({w.to_fd, POLLOUT, 0});
        slots.push_back({Slot::kWorkerIn, i});
      }
    }

    const int timeout = draining_ ? 20 : backoff_ms;
    const int rc = ::poll(pfds.data(), pfds.size(), timeout);
    if (rc < 0 && errno != EINTR) break;  // unrecoverable; bail out

    if (wake_idx >= 0 && (pfds[wake_idx].revents & POLLIN) != 0) {
      enter_drain();
      shutdown_timer.emplace("svc.router.shutdown");
    }
    if (listen_idx >= 0 && !draining_ &&
        (pfds[listen_idx].revents & POLLIN) != 0)
      do_accept();

    for (std::size_t i = fixed; i < pfds.size(); ++i) {
      const Slot& slot = slots[i - fixed];
      const short events = pfds[i].events;
      const short rev = pfds[i].revents;
      if (rev == 0) continue;
      switch (slot.kind) {
        case Slot::kConn: {
          const auto& c = conn_refs[slot.index];
          if (c->dead) break;
          if ((events & POLLIN) != 0 &&
              (rev & (POLLIN | POLLHUP | POLLERR)) != 0 && !c->read_shut)
            handle_client_readable(c);
          if (c->dead) break;
          if ((events & POLLOUT) != 0 &&
              (rev & (POLLOUT | POLLHUP | POLLERR)) != 0)
            flush_client(c);
          if (!c->dead && (rev & POLLNVAL) != 0) close_client(*c);
          break;
        }
        case Slot::kWorkerOut:
          if (workers_[slot.index]->alive &&
              (rev & (POLLIN | POLLHUP | POLLERR)) != 0)
            handle_worker_readable(slot.index);
          break;
        case Slot::kWorkerIn:
          if (workers_[slot.index]->alive &&
              (rev & (POLLOUT | POLLHUP | POLLERR)) != 0)
            flush_worker(slot.index);
          break;
      }
    }

    // Half-closed clients leave once their last owed response is out.
    for (const auto& c : conns_)
      if (!c->dead && c->close_when_idle && c->outstanding == 0 &&
          c->pending() == 0)
        close_client(*c);
    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [](const auto& c) { return c->dead; }),
                 conns_.end());

    if (!draining_) continue;

    const std::uint64_t now = obs::now_ns();
    if (!workers_stopping_) {
      // Drain phase 1: answer everything admitted, flush every client.
      if (!final_stats_sent_) {
        final_stats_sent_ = true;
        if (obs::enabled()) start_internal_stats_fanout();
      }
      if (now > flush_deadline_ns_) {
        // Budget exhausted. Whatever a worker still owes is answered
        // with a structured error (a hung worker must not hang
        // shutdown), and whoever is not reading their responses drops.
        std::vector<std::string> tokens;
        tokens.reserve(pending_.size());
        for (const auto& [token, p] : pending_) tokens.push_back(token);
        for (const auto& token : tokens) {
          const auto it = pending_.find(token);
          if (it == pending_.end()) continue;
          Pending p = std::move(it->second);
          pending_.erase(it);
          if (p.fanout) {
            if (p.fanout->remaining > 0) --p.fanout->remaining;
            if (p.fanout->remaining == 0) finish_fanout(p.fanout);
            continue;
          }
          --p.conn->outstanding;
          respond_client(p.conn,
                         internal_error_response(
                             p.orig_id, "router shut down before the "
                                        "worker answered"));
        }
        for (const auto& c : conns_)
          if (!c->dead && c->pending() > 0) drop_slow_client(c);
      }
      bool flushed = true;
      for (const auto& c : conns_)
        if (!c->dead && c->pending() > 0) flushed = false;
      if (pending_.empty() && flushed) {
        // Phase 2: the fleet winds down. Closing a worker's stdin is its
        // graceful-drain trigger (mirrors piping into rat_serve --stdio).
        for (const auto& c : conns_) close_client(*c);
        conns_.clear();
        for (std::size_t i = 0; i < workers_.size(); ++i)
          close_worker_stdin(i);
        workers_stopping_ = true;
        worker_exit_deadline_ns_ =
            now + static_cast<std::uint64_t>(
                      config_.worker_exit_timeout_ms > 0
                          ? config_.worker_exit_timeout_ms
                          : 0) *
                      1'000'000ull;
      }
    } else {
      bool any_alive = false;
      for (const auto& w : workers_)
        if (w->alive) any_alive = true;
      if (!any_alive) break;
      if (now > worker_exit_deadline_ns_) {
        for (std::size_t i = 0; i < workers_.size(); ++i) kill_worker(i);
        worker_exit_deadline_ns_ = ~0ull;  // kill once; EOFs follow
      }
    }
  }

  for (const auto& c : conns_) close_client(*c);
  conns_.clear();
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    Worker& w = *workers_[i];
    if (!w.alive) continue;
    kill_worker(i);
    worker_died(i);
  }
  reap_zombies(/*block=*/true);
}

std::string Router::next_token() {
  // Tokens are the correlation ids on the worker wire: short, strictly
  // alphanumeric (so io::json_str never escapes them and response_token
  // can scan to the bare closing quote), unique per router lifetime.
  char buf[24];
  std::snprintf(buf, sizeof buf, "t%llx",
                static_cast<unsigned long long>(token_counter_++));
  return std::string(buf);
}

}  // namespace rat::svc
