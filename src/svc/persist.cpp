#include "svc/persist.hpp"

#include <memory>
#include <utility>

#include "io/batch.hpp"
#include "svc/fingerprint.hpp"

namespace rat::svc {

PersistentResultCache::PersistentResultCache(
    const std::filesystem::path& dir, store::DurableStoreOptions options)
    : store_(dir, options) {}

std::size_t PersistentResultCache::warm(ResultCache& cache) {
  std::size_t loaded = 0;
  store_.for_each([&](const std::string& key, const std::string& value) {
    auto predictions =
        std::make_shared<const std::vector<core::ThroughputPrediction>>(
            io::decode_predictions(value));
    cache.put(key, fnv1a64(key), std::move(predictions));
    ++loaded;
  });
  return loaded;
}

void PersistentResultCache::append(const std::string& key,
                                   const ResultCache::Value& value) {
  store_.put(key, io::encode_predictions(*value));
}

}  // namespace rat::svc
