// Durable backing for the service's result cache.
//
// PersistentResultCache pairs a store::DurableStore (rat.store.v1
// journal + snapshot, docs/STORE.md) with the in-memory ResultCache:
// every *genuine* insert — ResultCache::PutOutcome kInserted or
// kInsertedEvicting, never a kRefreshed duplicate — is appended as a
// canonical-key → encoded-predictions entry, and warm() replays the
// store into a freshly started cache in last-write order, so the LRU
// comes back with the most recently computed results most recent.
//
// Entries are keyed by the full rat.fp.v1 canonical text
// (svc/fingerprint.hpp) — the same identity the in-memory cache uses,
// so a warm-started service hits exactly where the previous process
// would have. Predictions are stored as raw IEEE-754 bit patterns
// (store/codec.hpp), which is what makes warm-start responses
// byte-identical to cold evaluation: no decimal round-trip ever touches
// a stored value.
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "store/store.hpp"
#include "svc/cache.hpp"

namespace rat::svc {

class PersistentResultCache {
 public:
  /// Open (or create) the store under @p dir. Throws store::StoreError
  /// on unreadable directories or a corrupt snapshot; a torn journal
  /// tail is recovered silently (that is a normal crash, not damage).
  explicit PersistentResultCache(const std::filesystem::path& dir,
                                 store::DurableStoreOptions options = {});

  /// Replay every persisted entry into @p cache (oldest write first) and
  /// return how many were loaded. Entries beyond the cache's capacity
  /// simply evict in LRU order, matching what the live process held.
  std::size_t warm(ResultCache& cache);

  /// Persist one freshly computed result. Call only for genuine inserts
  /// (see file comment); durable on return under sync_every_append.
  void append(const std::string& key, const ResultCache::Value& value);

  store::DurableStore& store() { return store_; }

 private:
  store::DurableStore store_;
};

}  // namespace rat::svc
