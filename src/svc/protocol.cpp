#include "svc/protocol.hpp"

#include <cmath>
#include <sstream>

#include "io/batch.hpp"
#include "io/json.hpp"
#include "svc/fingerprint.hpp"

namespace rat::svc {

namespace {

/// "id":"..." or "id":null — empty ids render as null so a response to an
/// unparseable request is still well-formed.
void append_id(std::ostream& os, const std::string& id) {
  os << "\"id\":";
  if (id.empty())
    os << "null";
  else
    os << io::json_str(id);
}

void append_head(std::ostream& os, const std::string& id,
                 const char* status) {
  os << "{\"schema\":\"" << kProtocolSchema << "\",";
  append_id(os, id);
  os << ",\"status\":\"" << status << '"';
}

}  // namespace

Request parse_request(const std::string& line) {
  io::JsonValue doc;
  try {
    doc = io::parse_json(line);
  } catch (const std::invalid_argument& e) {
    throw ProtocolError(SvcErrorCode::kBadRequest, e.what());
  }
  if (!doc.is_object())
    throw ProtocolError(SvcErrorCode::kBadRequest,
                        "request must be a JSON object");

  // Recover the id first so every later failure can echo it.
  Request req;
  if (const io::JsonValue* id = doc.find("id")) {
    if (id->is_string())
      req.id = id->string;
    else if (!id->is_null())
      throw ProtocolError(SvcErrorCode::kBadRequest,
                          "\"id\" must be a string");
  }

  auto bad = [&req](const std::string& message) {
    return ProtocolError(SvcErrorCode::kBadRequest, message, req.id);
  };

  for (const auto& [key, value] : doc.object) {
    if (key == "id") {
      continue;
    } else if (key == "schema") {
      // Optional, but when present it must name this protocol exactly.
      if (!value.is_string() || value.string != kProtocolSchema)
        throw bad(std::string("\"schema\" must be \"") + kProtocolSchema +
                  "\" when present");
    } else if (key == "op") {
      if (!value.is_string()) throw bad("\"op\" must be a string");
      if (value.string == "evaluate") req.op = Request::Op::kEvaluate;
      else if (value.string == "ping") req.op = Request::Op::kPing;
      else if (value.string == "stats") req.op = Request::Op::kStats;
      else if (value.string == "shutdown") req.op = Request::Op::kShutdown;
      else throw bad("unknown op: '" + value.string + "'");
    } else if (key == "worksheet") {
      if (!value.is_string()) throw bad("\"worksheet\" must be a string");
      req.worksheet = value.string;
      req.has_worksheet = true;
    } else if (key == "file") {
      if (!value.is_string()) throw bad("\"file\" must be a string");
      req.file = value.string;
      req.has_file = true;
    } else if (key == "deadline_ms") {
      // The JSON layer already refuses non-finite literals, but the
      // deadline feeds a float->integer cast downstream, so enforce
      // finiteness here too rather than rely on that coincidence.
      if (!value.is_number() || !std::isfinite(value.number) ||
          !(value.number > 0.0))
        throw bad("\"deadline_ms\" must be a positive finite number");
      req.deadline_ms = value.number;
    } else if (key == "no_cache") {
      if (!value.is_bool()) throw bad("\"no_cache\" must be a boolean");
      req.no_cache = value.boolean;
    } else {
      throw bad("unknown request member: '" + key + "'");
    }
  }

  if (req.op == Request::Op::kEvaluate) {
    if (req.has_worksheet == req.has_file)
      throw bad(
          "evaluate needs exactly one of \"worksheet\" (inline text) or "
          "\"file\" (server-side path)");
  } else if (req.has_worksheet || req.has_file) {
    throw bad("\"worksheet\"/\"file\" only apply to op \"evaluate\"");
  }
  return req;
}

std::string evaluate_response(
    const std::string& id, std::uint64_t fp, const core::RatInputs& inputs,
    const std::vector<core::ThroughputPrediction>& predictions) {
  std::ostringstream os;
  append_head(os, id, "ok");
  os << ",\"op\":\"evaluate\",\"fingerprint\":\"" << fingerprint_hex(fp)
     << "\",\"inputs\":";
  io::append_inputs_json(os, inputs);
  os << ",\"predictions\":[";
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    if (i) os << ',';
    io::append_prediction_json(os, predictions[i]);
  }
  os << "]}";
  return os.str();
}

std::string error_response(const std::string& id, SvcErrorCode code,
                           const std::string& message) {
  std::ostringstream os;
  append_head(os, id, "error");
  os << ",\"error\":{\"code\":\"" << svc_error_code_name(code)
     << "\",\"message\":" << io::json_str(message) << "}}";
  return os.str();
}

std::string diagnostic_response(const std::string& id,
                                const core::Diagnostic& diagnostic) {
  std::ostringstream os;
  append_head(os, id, "error");
  os << ",\"error\":{\"code\":\""
     << core::error_code_name(diagnostic.code)
     << "\",\"message\":" << io::json_str(diagnostic.message)
     << ",\"diagnostic\":";
  io::append_diagnostic_json(os, diagnostic);
  os << "}}";
  return os.str();
}

std::string internal_error_response(const std::string& id,
                                    const std::string& message) {
  std::ostringstream os;
  append_head(os, id, "error");
  os << ",\"error\":{\"code\":\"E_INTERNAL\",\"message\":"
     << io::json_str(message) << "}}";
  return os.str();
}

std::string pong_response(const std::string& id) {
  std::ostringstream os;
  append_head(os, id, "ok");
  os << ",\"op\":\"ping\"}";
  return os.str();
}

std::string shutdown_response(const std::string& id) {
  std::ostringstream os;
  append_head(os, id, "ok");
  os << ",\"op\":\"shutdown\",\"draining\":true}";
  return os.str();
}

}  // namespace rat::svc
