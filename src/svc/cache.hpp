// Sharded LRU result cache for the prediction service.
//
// The service memoizes predict_all by canonical worksheet key
// (svc/fingerprint.hpp): repeated evaluations of the same design — the
// common case in Figure-1 style iterative exploration, where a driver
// re-queries neighbours of the current candidate — become O(1) lookups.
//
// Concurrency model: the key's 64-bit fingerprint selects one of a fixed
// number of shards, each protected by its own mutex and holding an
// independent LRU list, so concurrent requests for different worksheets
// rarely contend. Values are stored by shared_ptr and returned without
// copying the prediction vector.
//
// Capacity is per-cache and split evenly across shards (each shard holds
// at most ceil(capacity / n_shards) entries), so the worst-case resident
// entry count never exceeds capacity + n_shards - 1. A capacity of 0
// disables storage entirely: every get misses, every put is dropped —
// useful for benchmarking the cold path.
//
// Stats are tracked natively (atomics, always on, exposed through the
// service's "stats" op) and mirrored into the obs registry when
// observability is enabled: svc.cache.hit / svc.cache.miss /
// svc.cache.eviction counters and an svc.cache.size gauge.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/throughput.hpp"

namespace rat::svc {

class ResultCache {
 public:
  using Value = std::shared_ptr<const std::vector<core::ThroughputPrediction>>;

  /// What put() actually did. The persistence layer keys off this: only
  /// genuine inserts reach the durable journal — a kRefreshed (key
  /// already resident, e.g. two concurrent misses computing the same
  /// worksheet) must not append a duplicate record.
  enum class PutOutcome {
    kDropped,           ///< capacity 0: nothing stored
    kInserted,          ///< new entry, shard had room
    kInsertedEvicting,  ///< new entry, shard's LRU tail evicted
    kRefreshed,         ///< key already resident; value + LRU refreshed
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t size = 0;   ///< resident entries right now
    std::uint64_t bytes = 0;  ///< approx resident bytes (keys + predictions)
  };

  /// @p capacity entries total across @p n_shards shards (clamped to at
  /// least 1 shard; 0 capacity disables the cache, see file comment).
  explicit ResultCache(std::size_t capacity, std::size_t n_shards = 8);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Look up @p key (its fingerprint @p fp picks the shard). A hit
  /// refreshes the entry's LRU position. Null on miss.
  Value get(const std::string& key, std::uint64_t fp);

  /// Insert or refresh @p key -> @p value, evicting the shard's least
  /// recently used entry if the shard is full. The outcome reports which
  /// of those happened (see PutOutcome).
  PutOutcome put(const std::string& key, std::uint64_t fp, Value value);

  std::size_t capacity() const { return capacity_; }
  Stats stats() const;

  /// Drop every entry (tests; does not reset hit/miss counters).
  void clear();

 private:
  struct Shard {
    std::mutex mu;
    /// Front = most recently used.
    std::list<std::pair<std::string, Value>> lru;
    std::unordered_map<std::string,
                       std::list<std::pair<std::string, Value>>::iterator>
        index;
  };

  Shard& shard_for(std::uint64_t fp) { return *shards_[fp % shards_.size()]; }

  std::size_t capacity_ = 0;
  std::size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> size_{0};
  std::atomic<std::uint64_t> bytes_{0};
};

/// hits / (hits + misses); 0 before the first lookup. The derived gauge
/// exported as svc.cache.hit_ratio (docs/SERVICE.md).
inline double hit_ratio(const ResultCache::Stats& st) {
  const std::uint64_t total = st.hits + st.misses;
  return total == 0 ? 0.0
                    : static_cast<double>(st.hits) /
                          static_cast<double>(total);
}

}  // namespace rat::svc
