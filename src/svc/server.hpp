// Transport for the prediction service: newline-delimited JSON over
// stdio and/or a loopback TCP listener.
//
// The server owns threads and file descriptors only — every request
// line is handed to the Service, and the Service's response callback
// writes back to the originating connection (whole lines, under a
// per-connection mutex, so pipelined responses never interleave).
//
// Lifecycle:
//
//   start()  bind 127.0.0.1:<port> (port 0 = ephemeral; port() tells
//            you what was bound), spawn the accept thread and, in stdio
//            mode, the stdin reader;
//   run()    block until stop is triggered, then drain gracefully:
//            1. readers stop pulling new requests (wake pipe),
//            2. service.begin_drain() — late arrivals get
//               E_SHUTTING_DOWN,
//            3. service.wait_drained() — every admitted request's
//               response is written,
//            4. sockets close, threads join.
//
// Stop triggers: trigger_stop() from any thread, a shutdown op (the
// server installs itself as the Service's shutdown handler), or a
// signal handler writing one byte to wake_fd() — write(2) is
// async-signal-safe, which is the entire reason the wake pipe exists.
// rat_serve wires SIGINT/SIGTERM to exactly that.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "svc/service.hpp"

namespace rat::svc {

struct ServerConfig {
  bool tcp = true;        ///< listen on loopback TCP
  int port = 0;           ///< 0 = ephemeral (read the result via port())
  bool stdio = false;     ///< also serve stdin -> stdout
  std::size_t max_line_bytes = 4u << 20;  ///< oversize lines are rejected
                                          ///< and the connection closed
};

class Server {
 public:
  Server(Service& service, ServerConfig config);

  /// Joins all threads; trigger_stop() + run() must have completed (the
  /// destructor stops and joins as a backstop).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind/listen and spawn reader threads. Throws std::system_error when
  /// the socket cannot be bound.
  void start();

  /// Bound TCP port (valid after start() when config.tcp).
  int port() const { return port_; }

  /// Write end of the wake pipe, for async-signal-safe stop requests:
  /// a signal handler may write(wake_fd(), "x", 1).
  int wake_fd() const { return wake_w_; }

  /// Request stop from normal (non-signal) context.
  void trigger_stop();

  /// Block until stopped, then drain the service and tear down
  /// connections (see file comment). Returns once fully drained.
  void run();

 private:
  struct Connection;

  void accept_loop();
  void reader_loop(std::shared_ptr<Connection> conn);
  void add_connection(std::shared_ptr<Connection> conn, std::thread thread);

  Service& service_;
  ServerConfig config_;

  int listen_fd_ = -1;
  int wake_r_ = -1;
  int wake_w_ = -1;
  int port_ = -1;

  std::thread accept_thread_;
  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;
  std::vector<std::thread> conn_threads_;
  bool started_ = false;
  bool ran_ = false;
};

}  // namespace rat::svc
