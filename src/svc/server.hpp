// Transport for the prediction service: newline-delimited JSON over
// stdio and/or a loopback TCP listener, served by one readiness-driven
// event loop.
//
// A single loop thread owns every file descriptor. It accepts, reads and
// writes exclusively over non-blocking fds (poll(2) readiness), keeping
// per-connection buffers for partial request lines and partially written
// responses. Request lines are handed to the Service; evaluations run on
// the shared ThreadPool, and completed responses are handed back to the
// loop through a notify pipe — worker threads never touch sockets, so a
// response is never lost to a racing connection teardown and a blocked
// send can never stall a worker.
//
// Slow clients: each connection's outbound queue is bounded
// (max_write_buffer_bytes of unsent bytes). A client that stops reading
// while responses keep arriving exceeds the bound and is disconnected —
// counted as svc.server.slow_client_dropped — instead of ever blocking
// the loop, other connections, or the graceful drain. This replaces the
// old thread-per-connection design whose blocking send() under a
// per-connection mutex let one stalled reader wedge every response (and
// the drain) destined for that connection.
//
// Lifecycle:
//
//   start()  bind 127.0.0.1:<port> (port 0 = ephemeral; port() tells
//            you what was bound), register the stdio connection when
//            configured, and spawn the event loop;
//   run()    join the loop. The loop exits only after a stop trigger,
//            then drains gracefully:
//            1. stop accepting and stop reading (connections stay open),
//            2. service.begin_drain() — late arrivals get
//               E_SHUTTING_DOWN,
//            3. every admitted request's response is flushed through the
//               still-open connections; clients that refuse to read get
//               drain_flush_timeout_ms before being dropped as slow,
//            4. sockets close, the loop thread exits.
//
// Stop triggers: trigger_stop() from any thread, a shutdown op (the
// server installs itself as the Service's shutdown handler), stdin EOF
// in stdio mode, or a signal handler writing one byte to wake_fd() —
// write(2) is async-signal-safe, which is the entire reason the wake
// pipe exists. rat_serve wires SIGINT/SIGTERM to exactly that.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "svc/service.hpp"

namespace rat::svc {

struct ServerConfig {
  bool tcp = true;        ///< listen on loopback TCP
  int port = 0;           ///< 0 = ephemeral (read the result via port())
  bool stdio = false;     ///< also serve stdin -> stdout
  std::size_t max_line_bytes = 4u << 20;  ///< oversize lines are rejected
                                          ///< and the connection closed
  int backlog = 64;       ///< listen(2) backlog (--backlog)
  /// Bounded per-connection outbound queue: when more than this many
  /// unsent response bytes pile up, the client has stopped reading and
  /// is disconnected (svc.server.slow_client_dropped) instead of
  /// blocking the event loop behind a full socket buffer.
  std::size_t max_write_buffer_bytes = 4u << 20;
  /// SO_SNDBUF for accepted sockets (0 = OS default). Small values bound
  /// how much the kernel buffers on the server side, which makes the
  /// slow-client policy bite deterministically.
  int so_sndbuf = 0;
  /// Flush budget during drain: pending responses may keep trickling to
  /// clients this long; whoever still has unread bytes afterwards is
  /// dropped as a slow client so shutdown always terminates.
  int drain_flush_timeout_ms = 5000;
  /// Backoff after accept(2) fails with EMFILE/ENFILE (fd exhaustion):
  /// the listen fd stays readable while the pending connection waits, so
  /// without a pause the loop would poll-spin at 100% CPU. The listen fd
  /// is simply not polled for this long, then accept retries — the
  /// queued connection is still there if fds freed up.
  int accept_backoff_ms = 50;
  /// The fds served in stdio mode (defaults: the process's stdin and
  /// stdout). Tests point these at pipes to exercise stdio lifecycle —
  /// reader-gone EPIPE, EOF drain — without touching the real fds 0/1.
  int stdio_in_fd = 0;
  int stdio_out_fd = 1;
};

class Server {
 public:
  /// Transport-level counters (the svc.server.* metrics, readable
  /// without the obs registry).
  struct Stats {
    std::uint64_t connections = 0;          ///< sockets accepted
    std::uint64_t slow_clients_dropped = 0; ///< write queue bound exceeded
    std::uint64_t responses_dropped = 0;    ///< response to a gone client
    std::uint64_t write_failures = 0;       ///< hard send/write errors
    std::uint64_t accept_failures = 0;      ///< accept(2) EMFILE/ENFILE
  };

  Server(Service& service, ServerConfig config);

  /// Joins the loop; trigger_stop() + run() must have completed (the
  /// destructor stops and joins as a backstop).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind/listen and spawn the event loop. Throws std::system_error when
  /// the socket cannot be bound.
  void start();

  /// Bound TCP port (valid after start() when config.tcp).
  int port() const { return port_; }

  /// Write end of the wake pipe, for async-signal-safe stop requests:
  /// a signal handler may write(wake_fd(), "x", 1).
  int wake_fd() const { return wake_w_; }

  /// Request stop from normal (non-signal) context.
  void trigger_stop();

  /// Block until stopped and fully drained (see file comment).
  void run();

  Stats stats() const;

 private:
  struct Connection;

  void event_loop();
  void enter_drain();
  void do_accept();
  void handle_readable(const std::shared_ptr<Connection>& conn);
  void deliver_lines(const std::shared_ptr<Connection>& conn);
  void submit_line(const std::shared_ptr<Connection>& conn, std::string line);
  /// Any-thread handoff of a finished response line into the loop.
  void enqueue_response(std::shared_ptr<Connection> conn, std::string line);
  void process_completions();
  void append_response(const std::shared_ptr<Connection>& conn,
                       const std::string& line);
  void flush_writes(const std::shared_ptr<Connection>& conn);
  void drop_slow_client(const std::shared_ptr<Connection>& conn);
  void close_connection(Connection& conn);

  Service& service_;
  ServerConfig config_;

  int listen_fd_ = -1;
  int wake_r_ = -1;    ///< stop latch: stays readable once stop was asked
  int wake_w_ = -1;
  int notify_r_ = -1;  ///< completion handoff: workers ping the loop
  int notify_w_ = -1;
  int port_ = -1;

  std::thread loop_thread_;

  // Loop-thread-only state (start() seeds conns_ before the loop spawns).
  std::vector<std::shared_ptr<Connection>> conns_;
  bool draining_ = false;
  std::uint64_t flush_deadline_ns_ = 0;
  std::uint64_t accept_backoff_until_ns_ = 0;  ///< EMFILE backoff window

  // Completed responses, handed from any thread to the loop.
  std::mutex done_mu_;
  std::vector<std::pair<std::shared_ptr<Connection>, std::string>> done_;

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> slow_clients_dropped_{0};
  std::atomic<std::uint64_t> responses_dropped_{0};
  std::atomic<std::uint64_t> write_failures_{0};
  std::atomic<std::uint64_t> accept_failures_{0};

  bool started_ = false;
  bool ran_ = false;
};

}  // namespace rat::svc
