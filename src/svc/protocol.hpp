// The rat.svc.v1 wire protocol: newline-delimited JSON requests and
// responses (full schema in docs/SERVICE.md).
//
// One request per line, one response line per request — never zero,
// never two. Responses carry the client's "id" verbatim so requests may
// be pipelined and answered out of order. The evaluate payload ("inputs"
// + "predictions") is rendered by the same io/batch.hpp fragment
// writers as rat_batch's JSON, so a service response and a batch run
// over the same worksheet agree byte for byte — and so do the cache-hit
// and cache-miss paths for one request, since the payload depends only
// on the parsed inputs and the deterministic predictions.
//
// Request grammar is strict in the spirit of the worksheet parser:
// unknown members, wrong member types and malformed JSON are rejected
// with E_BAD_REQUEST rather than ignored. Worksheet failures reuse the
// core::ParseError taxonomy (E_BAD_NUMBER, E_BAD_LIST, ...) and carry
// the full structured diagnostic.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/throughput.hpp"
#include "io/diagnostics.hpp"

namespace rat::svc {

inline constexpr const char* kProtocolSchema = "rat.svc.v1";

/// Service-level error codes, extending the worksheet E_* taxonomy.
enum class SvcErrorCode {
  kBadRequest,       ///< malformed JSON, unknown/ill-typed members, bad op
  kOverloaded,       ///< admission queue full — retry later
  kDeadlineExpired,  ///< request outlived its deadline before running
  kShuttingDown,     ///< service is draining; no new work accepted
};

constexpr const char* svc_error_code_name(SvcErrorCode code) {
  switch (code) {
    case SvcErrorCode::kBadRequest: return "E_BAD_REQUEST";
    case SvcErrorCode::kOverloaded: return "E_OVERLOADED";
    case SvcErrorCode::kDeadlineExpired: return "E_DEADLINE_EXPIRED";
    case SvcErrorCode::kShuttingDown: return "E_SHUTTING_DOWN";
  }
  return "E_BAD_REQUEST";
}

/// One parsed request line.
struct Request {
  enum class Op { kEvaluate, kPing, kStats, kShutdown };

  std::string id;           ///< echoed verbatim; may be empty
  Op op = Op::kEvaluate;
  std::string worksheet;    ///< inline worksheet text (evaluate)
  std::string file;         ///< server-side worksheet path (evaluate)
  bool has_worksheet = false;
  bool has_file = false;
  double deadline_ms = 0.0; ///< 0 = use the service default
  bool no_cache = false;    ///< bypass the result cache (benchmarks)
};

/// Thrown by parse_request. Carries the client id when the line was
/// well-formed enough to recover it, so the error response still
/// correlates with the request.
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(SvcErrorCode code, const std::string& message,
                std::string id = {})
      : std::runtime_error(message), code_(code), id_(std::move(id)) {}

  SvcErrorCode code() const { return code_; }
  const std::string& id() const { return id_; }

 private:
  SvcErrorCode code_;
  std::string id_;
};

/// Parse one NDJSON request line. Throws ProtocolError (E_BAD_REQUEST)
/// on malformed JSON, non-object documents, unknown members, ill-typed
/// members, unknown ops, or an evaluate without exactly one worksheet
/// source.
Request parse_request(const std::string& line);

// ---- Response rendering (one line, no trailing newline) ----

/// {"schema":...,"id":...,"status":"ok","op":"evaluate","fingerprint":...,
///  "inputs":{...},"predictions":[...]}
std::string evaluate_response(
    const std::string& id, std::uint64_t fp, const core::RatInputs& inputs,
    const std::vector<core::ThroughputPrediction>& predictions);

/// Service-level failure ({"status":"error","error":{"code":...}}).
std::string error_response(const std::string& id, SvcErrorCode code,
                           const std::string& message);

/// Worksheet failure: code is the diagnostic's E_* name and the full
/// structured diagnostic rides along, exactly as in rat_batch JSON.
std::string diagnostic_response(const std::string& id,
                                const core::Diagnostic& diagnostic);

/// Internal failure (unexpected exception while evaluating): E_INTERNAL.
std::string internal_error_response(const std::string& id,
                                    const std::string& message);

/// {"status":"ok","op":"ping"}
std::string pong_response(const std::string& id);

/// {"status":"ok","op":"shutdown","draining":true}
std::string shutdown_response(const std::string& id);

}  // namespace rat::svc
