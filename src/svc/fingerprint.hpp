// Canonical worksheet fingerprinting for the prediction service cache.
//
// Two worksheet texts that parse to the same RatInputs must map to the
// same cache entry no matter how they were formatted: key order, spacing,
// comments, CRLF endings, "+1e2" vs "100.0" — none of it may matter.
// The canonical form is therefore computed from the *parsed* struct, not
// the source text: a fixed key order, one canonical spelling per value
// (the shortest decimal string that round-trips the double, so distinct
// bit patterns always get distinct spellings), and a schema tag so the
// key space can evolve.
//
// The candidate clock list keeps its order: predict_all evaluates clocks
// in worksheet order and the response carries one prediction per clock,
// so a reordered clock list is a genuinely different request.
//
// fingerprint() is a 64-bit FNV-1a over the canonical text — used for
// shard selection and compact reporting. The cache itself keys on the
// full canonical text, so hash collisions can never alias two different
// worksheets to one result.
#pragma once

#include <cstdint>
#include <string>

#include "core/parameters.hpp"

namespace rat::svc {

/// Deterministic canonical serialization of @p inputs (see file comment).
/// Identical RatInputs (including every double bit pattern) produce
/// identical text; any differing field produces differing text.
std::string canonical_text(const core::RatInputs& inputs);

/// 64-bit FNV-1a of @p text.
std::uint64_t fnv1a64(const std::string& text);

/// fnv1a64(canonical_text(inputs)).
std::uint64_t fingerprint(const core::RatInputs& inputs);

/// @p fp as 16 lowercase hex digits (the service's wire spelling).
std::string fingerprint_hex(std::uint64_t fp);

}  // namespace rat::svc
