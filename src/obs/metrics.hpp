// Low-overhead observability: counters, gauges, timers, trace spans.
//
// The evaluation engine runs worksheets through a thread pool and batch
// runner; this layer answers "where does the time go" without perturbing
// the numbers it measures. Design rules:
//
//   * disabled by default — every instrumentation site is guarded by
//     enabled(), a single relaxed atomic load, so the uninstrumented hot
//     path costs one predictable branch;
//   * compiling with RAT_OBS_DISABLE turns enabled() into constexpr false
//     and dead-codes every site entirely (for byte-identical baselines);
//   * thread-safe by construction: the Registry stripes its maps across
//     mutex shards keyed by metric-name hash, so concurrent workers
//     updating different metrics rarely contend;
//   * metrics never influence results — instrumentation reads clocks and
//     writes the registry, nothing else, so predictions stay bit-identical
//     whether observability is on or off.
//
// Exported as a `rat.metrics.v1` JSON document (docs/OBSERVABILITY.md) and
// a human-readable summary table. obs sits *below* util in the dependency
// order (util's thread pool is itself instrumented), so this header only
// uses the standard library.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/histogram.hpp"

namespace rat::obs {

/// Monotonic timestamp in nanoseconds (std::chrono::steady_clock).
std::uint64_t now_ns();

/// Small dense id for the calling thread (0, 1, 2, ... in first-use
/// order). Stable for the thread's lifetime; used to attribute spans.
std::uint32_t thread_index();

#ifdef RAT_OBS_DISABLE
constexpr bool enabled() { return false; }
inline void set_enabled(bool) {}
#else
namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// True when instrumentation sites should record. Relaxed load: callers
/// only need a stable on/off decision, not ordering.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Flip collection on or off process-wide (default: off).
void set_enabled(bool on);
#endif

/// Value of the RAT_METRICS environment variable when set and non-empty:
/// the path metrics should be exported to (apps honour it as an implicit
/// --metrics). Returns nullptr otherwise.
const char* env_metrics_path();

/// Aggregated durations of one named operation.
struct TimerStat {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;

  double mean_ns() const {
    return count ? static_cast<double>(total_ns) / static_cast<double>(count)
                 : 0.0;
  }
};

/// One span-style trace event: a named interval on a specific thread.
struct SpanEvent {
  std::string name;
  std::string detail;  ///< e.g. the worksheet file the span covers
  std::uint32_t thread = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
};

/// Thread-safe metric store. Counters, gauges and timers live in
/// lock-striped hash maps (shard chosen by name hash); spans go to a
/// bounded buffer that counts, rather than grows on, overflow.
class Registry {
 public:
  static constexpr std::size_t kDefaultSpanCapacity = 65536;

  explicit Registry(std::size_t span_capacity = kDefaultSpanCapacity);

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every instrumentation site records into.
  static Registry& global();

  void add_counter(std::string_view name, std::uint64_t delta = 1);
  /// Last-write-wins gauge.
  void set_gauge(std::string_view name, double value);
  /// Keep the maximum ever observed (e.g. peak queue depth).
  void max_gauge(std::string_view name, double value);
  void record_timer(std::string_view name, std::uint64_t elapsed_ns);
  /// Record @p value_ns into a named log-bucketed latency histogram
  /// (obs/histogram.hpp) so the export carries percentiles, not just
  /// the TimerStat's count/mean/min/max.
  void record_hist(std::string_view name, std::uint64_t value_ns);
  /// Record a completed interval; the calling thread is attributed.
  void record_span(std::string_view name, std::string_view detail,
                   std::uint64_t start_ns, std::uint64_t dur_ns);

  // Snapshots (ordered, for deterministic export).
  std::map<std::string, std::uint64_t> counters() const;
  std::map<std::string, double> gauges() const;
  std::map<std::string, TimerStat> timers() const;
  std::map<std::string, LogHistogram> hists() const;
  /// Spans in recording order; at most the constructed capacity.
  std::vector<SpanEvent> spans() const;
  /// Spans discarded because the buffer was full.
  std::uint64_t spans_dropped() const;

  /// Drop every metric and span (tests; long-lived batch processes).
  void reset();

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, std::uint64_t> counters;
    std::unordered_map<std::string, double> gauges;
    std::unordered_map<std::string, TimerStat> timers;
    std::unordered_map<std::string, LogHistogram> hists;
  };
  static constexpr std::size_t kShards = 16;

  Shard& shard_for(std::string_view name);
  const Shard& shard_for(std::string_view name) const;

  std::array<Shard, kShards> shards_;

  mutable std::mutex span_mu_;
  std::size_t span_capacity_;
  std::vector<SpanEvent> spans_;
  std::uint64_t spans_dropped_ = 0;
};

/// Times a scope into Registry::global() when observability is enabled at
/// construction; a disabled timer costs the enabled() check and nothing
/// else. With a non-empty @p span_detail the interval is also recorded as
/// a span (detail typically names the item, e.g. a worksheet path). With
/// @p record_hist the duration additionally feeds the same-named latency
/// histogram, so the export carries percentiles for this operation.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view name, std::string_view span_detail = {},
                       bool record_span = false, bool record_hist = false);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  bool active_;
  bool record_span_;
  bool record_hist_;
  std::string name_;
  std::string detail_;
  std::uint64_t start_ns_ = 0;
};

/// Serialize a registry snapshot as the rat.metrics.v1 JSON document
/// (schema in docs/OBSERVABILITY.md).
std::string metrics_json(const Registry& registry = Registry::global());

/// Human-readable summary: counters, gauges, then timers with
/// count/total/mean/min/max columns.
std::string summary_table(const Registry& registry = Registry::global());

/// metrics_json written to @p path; false (with a message on stderr) when
/// the file cannot be written.
bool write_metrics_file(const std::filesystem::path& path,
                        const Registry& registry = Registry::global());

}  // namespace rat::obs
