#include "obs/metrics.hpp"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>

namespace rat::obs {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint32_t thread_index() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

#ifndef RAT_OBS_DISABLE
namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}
#endif

const char* env_metrics_path() {
  const char* v = std::getenv("RAT_METRICS");
  return (v && *v) ? v : nullptr;
}

Registry::Registry(std::size_t span_capacity)
    : span_capacity_(span_capacity) {
  spans_.reserve(span_capacity_ < 1024 ? span_capacity_ : 1024);
}

Registry& Registry::global() {
  static Registry r;
  return r;
}

Registry::Shard& Registry::shard_for(std::string_view name) {
  return shards_[std::hash<std::string_view>{}(name) % kShards];
}

const Registry::Shard& Registry::shard_for(std::string_view name) const {
  return shards_[std::hash<std::string_view>{}(name) % kShards];
}

void Registry::add_counter(std::string_view name, std::uint64_t delta) {
  Shard& s = shard_for(name);
  std::lock_guard lock(s.mu);
  s.counters[std::string(name)] += delta;
}

void Registry::set_gauge(std::string_view name, double value) {
  Shard& s = shard_for(name);
  std::lock_guard lock(s.mu);
  s.gauges[std::string(name)] = value;
}

void Registry::max_gauge(std::string_view name, double value) {
  Shard& s = shard_for(name);
  std::lock_guard lock(s.mu);
  auto [it, inserted] = s.gauges.emplace(std::string(name), value);
  if (!inserted && value > it->second) it->second = value;
}

void Registry::record_timer(std::string_view name,
                            std::uint64_t elapsed_ns) {
  Shard& s = shard_for(name);
  std::lock_guard lock(s.mu);
  TimerStat& t = s.timers[std::string(name)];
  if (t.count == 0) {
    t.min_ns = t.max_ns = elapsed_ns;
  } else {
    if (elapsed_ns < t.min_ns) t.min_ns = elapsed_ns;
    if (elapsed_ns > t.max_ns) t.max_ns = elapsed_ns;
  }
  ++t.count;
  t.total_ns += elapsed_ns;
}

void Registry::record_hist(std::string_view name, std::uint64_t value_ns) {
  Shard& s = shard_for(name);
  std::lock_guard lock(s.mu);
  auto it = s.hists.find(std::string(name));
  if (it == s.hists.end())
    it = s.hists.emplace(std::string(name), LogHistogram{}).first;
  it->second.record(value_ns);
}

void Registry::record_span(std::string_view name, std::string_view detail,
                           std::uint64_t start_ns, std::uint64_t dur_ns) {
  const std::uint32_t tid = thread_index();
  std::lock_guard lock(span_mu_);
  if (spans_.size() >= span_capacity_) {
    ++spans_dropped_;
    return;
  }
  spans_.push_back(SpanEvent{std::string(name), std::string(detail), tid,
                             start_ns, dur_ns});
}

std::map<std::string, std::uint64_t> Registry::counters() const {
  std::map<std::string, std::uint64_t> out;
  for (const Shard& s : shards_) {
    std::lock_guard lock(s.mu);
    out.insert(s.counters.begin(), s.counters.end());
  }
  return out;
}

std::map<std::string, double> Registry::gauges() const {
  std::map<std::string, double> out;
  for (const Shard& s : shards_) {
    std::lock_guard lock(s.mu);
    out.insert(s.gauges.begin(), s.gauges.end());
  }
  return out;
}

std::map<std::string, TimerStat> Registry::timers() const {
  std::map<std::string, TimerStat> out;
  for (const Shard& s : shards_) {
    std::lock_guard lock(s.mu);
    out.insert(s.timers.begin(), s.timers.end());
  }
  return out;
}

std::map<std::string, LogHistogram> Registry::hists() const {
  std::map<std::string, LogHistogram> out;
  for (const Shard& s : shards_) {
    std::lock_guard lock(s.mu);
    out.insert(s.hists.begin(), s.hists.end());
  }
  return out;
}

std::vector<SpanEvent> Registry::spans() const {
  std::lock_guard lock(span_mu_);
  return spans_;
}

std::uint64_t Registry::spans_dropped() const {
  std::lock_guard lock(span_mu_);
  return spans_dropped_;
}

void Registry::reset() {
  for (Shard& s : shards_) {
    std::lock_guard lock(s.mu);
    s.counters.clear();
    s.gauges.clear();
    s.timers.clear();
    s.hists.clear();
  }
  std::lock_guard lock(span_mu_);
  spans_.clear();
  spans_dropped_ = 0;
}

ScopedTimer::ScopedTimer(std::string_view name, std::string_view span_detail,
                         bool record_span, bool record_hist)
    : active_(enabled()), record_span_(record_span),
      record_hist_(record_hist) {
  if (!active_) return;
  name_ = name;
  detail_ = span_detail;
  start_ns_ = now_ns();
}

ScopedTimer::~ScopedTimer() {
  if (!active_) return;
  const std::uint64_t dur = now_ns() - start_ns_;
  Registry& r = Registry::global();
  r.record_timer(name_, dur);
  if (record_hist_) r.record_hist(name_, dur);
  if (record_span_) r.record_span(name_, detail_, start_ns_, dur);
}

namespace {

constexpr double kNsPerSec = 1e9;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string json_str(const std::string& s) {
  return '"' + json_escape(s) + '"';
}

std::string sec(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9f",
                static_cast<double>(ns) / kNsPerSec);
  return buf;
}

std::string num(double x) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", x);
  return buf;
}

/// "1.234 ms"-style duration for the human summary.
std::string human_ns(double ns) {
  char buf[32];
  if (ns >= 1e9)
    std::snprintf(buf, sizeof buf, "%.3f s", ns / 1e9);
  else if (ns >= 1e6)
    std::snprintf(buf, sizeof buf, "%.3f ms", ns / 1e6);
  else if (ns >= 1e3)
    std::snprintf(buf, sizeof buf, "%.3f us", ns / 1e3);
  else
    std::snprintf(buf, sizeof buf, "%.0f ns", ns);
  return buf;
}

}  // namespace

std::string metrics_json(const Registry& registry) {
  std::ostringstream os;
  os << "{\"schema\":\"rat.metrics.v1\"";

  os << ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : registry.counters()) {
    if (!first) os << ',';
    first = false;
    os << json_str(name) << ':' << value;
  }
  os << '}';

  os << ",\"gauges\":{";
  first = true;
  for (const auto& [name, value] : registry.gauges()) {
    if (!first) os << ',';
    first = false;
    os << json_str(name) << ':' << num(value);
  }
  os << '}';

  os << ",\"timers\":{";
  first = true;
  for (const auto& [name, t] : registry.timers()) {
    if (!first) os << ',';
    first = false;
    os << json_str(name) << ":{\"count\":" << t.count
       << ",\"total_sec\":" << sec(t.total_ns)
       << ",\"mean_sec\":" << sec(static_cast<std::uint64_t>(t.mean_ns()))
       << ",\"min_sec\":" << sec(t.min_ns)
       << ",\"max_sec\":" << sec(t.max_ns) << '}';
  }
  os << '}';

  os << ",\"hists\":{";
  first = true;
  for (const auto& [name, h] : registry.hists()) {
    if (!first) os << ',';
    first = false;
    os << json_str(name) << ":{\"count\":" << h.count()
       << ",\"overflow\":" << h.overflow_count()
       << ",\"min_sec\":" << sec(h.min())
       << ",\"max_sec\":" << sec(h.max())
       << ",\"mean_sec\":" << num(h.mean() / kNsPerSec)
       << ",\"p50_sec\":" << num(h.percentile(50.0) / kNsPerSec)
       << ",\"p90_sec\":" << num(h.percentile(90.0) / kNsPerSec)
       << ",\"p99_sec\":" << num(h.percentile(99.0) / kNsPerSec)
       << ",\"p999_sec\":" << num(h.percentile(99.9) / kNsPerSec) << '}';
  }
  os << '}';

  os << ",\"spans\":[";
  first = true;
  for (const SpanEvent& s : registry.spans()) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":" << json_str(s.name);
    if (!s.detail.empty()) os << ",\"detail\":" << json_str(s.detail);
    os << ",\"thread\":" << s.thread
       << ",\"start_sec\":" << sec(s.start_ns)
       << ",\"dur_sec\":" << sec(s.dur_ns) << '}';
  }
  os << "],\"spans_dropped\":" << registry.spans_dropped() << '}';
  return os.str();
}

std::string summary_table(const Registry& registry) {
  std::ostringstream os;
  char line[256];

  const auto counters = registry.counters();
  if (!counters.empty()) {
    os << "counters:\n";
    for (const auto& [name, value] : counters) {
      std::snprintf(line, sizeof line, "  %-36s %12" PRIu64 "\n",
                    name.c_str(), value);
      os << line;
    }
  }

  const auto gauges = registry.gauges();
  if (!gauges.empty()) {
    os << "gauges:\n";
    for (const auto& [name, value] : gauges) {
      std::snprintf(line, sizeof line, "  %-36s %12g\n", name.c_str(), value);
      os << line;
    }
  }

  const auto timers = registry.timers();
  if (!timers.empty()) {
    std::snprintf(line, sizeof line, "timers:%31s %10s %12s %12s %12s %12s\n",
                  "", "count", "total", "mean", "min", "max");
    os << line;
    for (const auto& [name, t] : timers) {
      std::snprintf(line, sizeof line,
                    "  %-36s %10" PRIu64 " %12s %12s %12s %12s\n",
                    name.c_str(), t.count,
                    human_ns(static_cast<double>(t.total_ns)).c_str(),
                    human_ns(t.mean_ns()).c_str(),
                    human_ns(static_cast<double>(t.min_ns)).c_str(),
                    human_ns(static_cast<double>(t.max_ns)).c_str());
      os << line;
    }
  }

  const auto hists = registry.hists();
  if (!hists.empty()) {
    std::snprintf(line, sizeof line, "hists:%32s %10s %12s %12s %12s %12s\n",
                  "", "count", "p50", "p90", "p99", "max");
    os << line;
    for (const auto& [name, h] : hists) {
      std::snprintf(line, sizeof line,
                    "  %-36s %10" PRIu64 " %12s %12s %12s %12s\n",
                    name.c_str(), h.count(),
                    human_ns(h.percentile(50.0)).c_str(),
                    human_ns(h.percentile(90.0)).c_str(),
                    human_ns(h.percentile(99.0)).c_str(),
                    human_ns(static_cast<double>(h.max())).c_str());
      os << line;
    }
  }

  const std::uint64_t dropped = registry.spans_dropped();
  std::snprintf(line, sizeof line,
                "spans: %zu recorded, %" PRIu64 " dropped\n",
                registry.spans().size(), dropped);
  os << line;
  return os.str();
}

bool write_metrics_file(const std::filesystem::path& path,
                        const Registry& registry) {
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "obs: cannot write metrics file %s\n",
                 path.string().c_str());
    return false;
  }
  f << metrics_json(registry) << '\n';
  return f.good();
}

}  // namespace rat::obs
