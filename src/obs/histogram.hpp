// HDR-style log-bucketed histogram for latency distributions.
//
// The serving stack needs percentiles (p50/p99/p99.9), not just the
// count/total/min/max a TimerStat keeps: a mean hides exactly the tail
// that SLOs are written about. LogHistogram records non-negative
// integer values (nanoseconds, by convention) into buckets whose width
// grows with magnitude:
//
//   * values below 256 land in exact unit buckets (0..255);
//   * above that, each power-of-two octave [2^e, 2^(e+1)) is split into
//     128 equal sub-buckets of width 2^(e-7).
//
// A bucket's width is therefore at most lo/128 of its lower bound, so
// any value reconstructed from its bucket — and any percentile derived
// from the cumulative counts — carries at most 1/128 (~0.78%) relative
// error, at a memory cost that grows logarithmically with range (~36 KiB
// for the default 2^42 ns ≈ 73 min ceiling) instead of linearly.
//
// record/merge/percentile are deterministic and exact in counts: two
// histograms merged in any association order hold identical buckets
// (merge is bucket-wise addition), which is what lets per-connection or
// per-step histograms aggregate into one report without bias. Values
// above the configured ceiling go to a single overflow bucket: they are
// counted, min/max stay exact, and percentiles that land there report
// the exact observed maximum rather than inventing a bucket bound.
//
// Not thread-safe by itself; obs::Registry wraps it behind its shard
// mutexes (record_hist), the load generator owns its histograms on one
// thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rat::obs {

class LogHistogram {
 public:
  /// Sub-bucket resolution: 2^7 = 128 sub-buckets per octave, bounding
  /// relative error by 2^-7 < 1%.
  static constexpr int kSubBucketBits = 7;
  static constexpr std::uint64_t kSubBuckets = 1ull << kSubBucketBits;
  /// Values below this are binned exactly (unit-width buckets).
  static constexpr std::uint64_t kLinearMax = 2 * kSubBuckets;  // 256
  /// Default ceiling: 2^42 ns ≈ 73 minutes when recording nanoseconds.
  static constexpr std::uint64_t kDefaultMaxValue = 1ull << 42;

  explicit LogHistogram(std::uint64_t max_value = kDefaultMaxValue);

  /// Bucket index holding @p value (layout in the file comment).
  static std::size_t bucket_index(std::uint64_t value);
  /// Inclusive value range [lo, hi] covered by bucket @p index.
  static std::uint64_t bucket_lo(std::size_t index);
  static std::uint64_t bucket_hi(std::size_t index);

  /// Record @p count occurrences of @p value. Values above max_value()
  /// go to the overflow bucket (still counted; min/max stay exact).
  void record(std::uint64_t value, std::uint64_t count = 1);

  /// Bucket-wise addition. Throws std::invalid_argument when the two
  /// histograms were built with different ceilings (their bucket arrays
  /// would not line up).
  void merge(const LogHistogram& other);

  std::uint64_t count() const { return count_; }
  std::uint64_t overflow_count() const { return overflow_; }
  std::uint64_t max_value() const { return max_value_; }
  /// Exact extremes and mean of everything recorded (0 / 0.0 when empty).
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }

  /// Value at percentile @p p in [0, 100]: nearest-rank over the
  /// cumulative bucket counts, linearly interpolated inside the bucket,
  /// clamped to the exact observed [min, max]. Ranks that fall in the
  /// overflow bucket report the exact max. Returns 0.0 when empty.
  double percentile(double p) const;

  /// Worst-case relative error of any reconstructed value (2^-7).
  static constexpr double max_relative_error() {
    return 1.0 / static_cast<double>(kSubBuckets);
  }

 private:
  std::uint64_t max_value_;
  std::vector<std::uint64_t> buckets_;  ///< bucket_index(max_value_)+1 wide
  std::uint64_t count_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace rat::obs
