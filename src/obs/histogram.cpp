#include "obs/histogram.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace rat::obs {

std::size_t LogHistogram::bucket_index(std::uint64_t value) {
  if (value < kLinearMax) return static_cast<std::size_t>(value);
  // value >= 256 => bit_width >= 9 => e >= 8.
  const int e = std::bit_width(value) - 1;  // value in [2^e, 2^(e+1))
  const std::uint64_t sub = (value >> (e - kSubBucketBits)) - kSubBuckets;
  return static_cast<std::size_t>(kLinearMax) +
         static_cast<std::size_t>(e - (kSubBucketBits + 1)) *
             static_cast<std::size_t>(kSubBuckets) +
         static_cast<std::size_t>(sub);
}

std::uint64_t LogHistogram::bucket_lo(std::size_t index) {
  if (index < kLinearMax) return index;
  const std::size_t rel = index - static_cast<std::size_t>(kLinearMax);
  const int e = static_cast<int>(rel / kSubBuckets) + kSubBucketBits + 1;
  const std::uint64_t sub = rel % kSubBuckets;
  return (kSubBuckets + sub) << (e - kSubBucketBits);
}

std::uint64_t LogHistogram::bucket_hi(std::size_t index) {
  if (index < kLinearMax) return index;
  const std::size_t rel = index - static_cast<std::size_t>(kLinearMax);
  const int e = static_cast<int>(rel / kSubBuckets) + kSubBucketBits + 1;
  return bucket_lo(index) + ((1ull << (e - kSubBucketBits)) - 1);
}

LogHistogram::LogHistogram(std::uint64_t max_value) : max_value_(max_value) {
  if (max_value_ < kLinearMax) max_value_ = kLinearMax;
  buckets_.assign(bucket_index(max_value_) + 1, 0);
}

void LogHistogram::record(std::uint64_t value, std::uint64_t count) {
  if (count == 0) return;
  count_ += count;
  sum_ += static_cast<double>(value) * static_cast<double>(count);
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
  if (value > max_value_) {
    overflow_ += count;
    return;
  }
  buckets_[bucket_index(value)] += count;
}

void LogHistogram::merge(const LogHistogram& other) {
  if (max_value_ != other.max_value_)
    throw std::invalid_argument(
        "LogHistogram::merge: mismatched max_value ceilings");
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  overflow_ += other.overflow_;
  sum_ += other.sum_;
  if (other.count_ != 0) {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
}

double LogHistogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Nearest-rank: the k-th smallest recorded value, k in [1, count].
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;

  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t c = buckets_[i];
    if (c == 0) continue;
    cum += c;
    if (cum < rank) continue;
    // rank falls inside bucket i: spread its c ranks evenly across the
    // bucket's value range [lo, hi+1).
    const std::uint64_t pos = rank - (cum - c);  // 1..c
    const double lo = static_cast<double>(bucket_lo(i));
    const double width = static_cast<double>(bucket_hi(i)) + 1.0 - lo;
    double v = lo + (static_cast<double>(pos - 1) /
                     static_cast<double>(c)) * width;
    if (v < static_cast<double>(min_)) v = static_cast<double>(min_);
    if (v > static_cast<double>(max_)) v = static_cast<double>(max_);
    return v;
  }
  // The rank lives in the overflow bucket: report the exact maximum
  // rather than a bound the histogram never tracked.
  return static_cast<double>(max_);
}

}  // namespace rat::obs
