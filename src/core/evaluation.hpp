// Per-candidate evaluation of the Figure-1 gate pipeline.
//
// Split out of run_methodology so other drivers — the branch-and-bound
// explorer (src/explore) and its persistent plan cache — can produce,
// serialize and replay evaluations that are byte-identical to the ones
// the methodology state machine computes inline. Everything here is
// pure per-candidate work: no shared state, safe on any thread.
#pragma once

#include <cstddef>
#include <exception>
#include <string>
#include <string_view>
#include <vector>

#include "core/batch.hpp"
#include "core/methodology.hpp"

namespace rat::core {

/// Everything one candidate contributes to the outcome, computed without
/// touching shared state so candidates can be evaluated on any thread.
struct CandidateEvaluation {
  std::vector<TraceEntry> trace;
  ThroughputPrediction prediction;
  bool passed = false;
  RejectReason reject = RejectReason::kNone;
};

/// The throughput gate alone: records @p pred and the gate's trace
/// entries on @p ev and returns whether the candidate may proceed to the
/// later tests. Shared by evaluate_candidate and the explorer's
/// bound-synthesized rejections, so a rejection proven by a subregion
/// bound carries the exact trace bytes a full evaluation would have.
bool apply_throughput_gate(CandidateEvaluation& ev, std::size_t i,
                           const std::string& name, const Requirements& req,
                           const ThroughputPrediction& pred);

/// Run the full gate pipeline (throughput → precision → resource →
/// optional power) for candidate @p i given its precomputed throughput
/// prediction @p pred (batch predictions are bit-identical to predict()).
CandidateEvaluation evaluate_candidate(std::size_t i,
                                       const DesignCandidate& cand,
                                       const Requirements& req,
                                       const rcsim::Device& device,
                                       const ThroughputPrediction& pred);

/// Checkpoint payload codec: one CandidateEvaluation per checkpoint item,
/// every double as its exact bit pattern and every trace string verbatim,
/// so a replayed evaluation merges into a byte-identical outcome. The
/// byte format is stable — existing campaign checkpoints keep replaying.
std::string encode_evaluation(const CandidateEvaluation& ev);
CandidateEvaluation decode_evaluation(std::string_view payload);

/// Position-independent codec for the content-addressed plan cache: the
/// encoded form strips the candidate index and name from every trace
/// entry (both are redundant — the index is the enumeration position and
/// the name is the candidate's own), so a point evaluated at index 17 of
/// one campaign can be replayed at index 3 of an overlapping one.
/// decode re-stamps @p index and @p name on every entry.
std::string encode_evaluation_unindexed(const CandidateEvaluation& ev);
CandidateEvaluation decode_evaluation_unindexed(std::string_view payload,
                                                std::size_t index,
                                                const std::string& name);

/// Throughput predictions for one enumeration-order window of candidates,
/// evaluated in a single SoA batch. A candidate whose worksheet fails
/// validation does not abort the fill: its error is deferred and rethrown
/// only if and when that candidate is actually evaluated fresh, so the
/// serial early-exit semantics (an accepted design before the bad
/// candidate means the bad candidate is never touched) and the
/// checkpoint-restore semantics (a restored candidate is never
/// re-validated) are preserved exactly.
struct WindowPredictions {
  ThroughputBatch batch;
  std::vector<std::exception_ptr> errors;

  void fill(const std::vector<DesignCandidate>& candidates,
            std::size_t start, std::size_t count);
};

}  // namespace rat::core
