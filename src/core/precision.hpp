// The RAT numerical-precision test (paper §3.2).
//
// The paper treats precision as a design input: the designer picks a
// candidate fixed-point format, verifies its end-to-end error against the
// software (double-precision) reference, and feeds the resulting
// bytes-per-element into the throughput test. This module packages that
// loop: run an application kernel across formats, report error-vs-width,
// and select the minimal format within tolerance.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/parameters.hpp"
#include "core/throughput.hpp"
#include "fixedpoint/error_analysis.hpp"
#include "util/table.hpp"

namespace rat::core {

/// Tolerance and search window for a precision test.
struct PrecisionRequirements {
  double max_error_percent = 2.0;  ///< the paper's 1-D PDF tolerance
  int min_total_bits = 8;
  int max_total_bits = 32;
  /// Integer bits of the signed format under test (paper's PDF signals
  /// live in [0,1), i.e. 0 integer bits).
  int int_bits = 0;
  /// The caller vouches that the kernel may be invoked concurrently for
  /// different formats; candidate widths are then evaluated in parallel.
  /// Defaults to false (serial sweep) because FixedKernel is an arbitrary
  /// caller-supplied functor. Chosen format and sweep are identical either
  /// way (widths are independent and reported in ascending order).
  bool kernel_thread_safe = false;
};

/// Outcome of a precision test.
struct PrecisionResult {
  bool satisfied = false;
  /// Chosen format + its error when satisfied.
  std::optional<fx::PrecisionChoice> choice;
  /// Error report for every width evaluated (for the sweep table/curve).
  std::vector<fx::PrecisionChoice> sweep;

  /// Bytes/element implied by the chosen format, rounded up to whole bytes
  /// as the communication channel transfers them (the paper rounds 18-bit
  /// data to 4-byte transfers because the channel is 32-bit). @p channel
  /// is the channel word size in bytes.
  double bytes_per_element(double channel_word_bytes = 4.0) const;

  /// "bits | max err% | rmse" table over the sweep.
  util::Table to_table() const;
};

/// Run the precision test: evaluate @p kernel (fixed-point implementation
/// of the application) against @p reference over the requirement window.
PrecisionResult run_precision_test(const fx::FixedKernel& kernel,
                                   std::span<const double> reference,
                                   const PrecisionRequirements& req);

/// Bytes/element implied by one format, rounded up to whole channel words
/// — the same rounding PrecisionResult::bytes_per_element applies to the
/// chosen format.
double format_bytes_per_element(const fx::Format& format,
                                double channel_word_bytes = 4.0);

/// One row of a quantization→throughput sweep: what the throughput test
/// would predict if the design adopted this format's channel-rounded
/// bytes/element.
struct QuantizedThroughputPoint {
  fx::Format format;
  double bytes_per_element = 0.0;
  ThroughputPrediction prediction;
};

/// Re-run the throughput test across every format of a precision sweep:
/// for each entry the worksheet's dataset.bytes_per_element is replaced
/// by the format's channel-rounded width and Eqs. 1-11 are evaluated —
/// all formats in a single core::ThroughputBatch SoA pass, so the paper's
/// precision-vs-throughput trade-off curve costs one batched sweep
/// instead of a per-format predict() loop. Each prediction is
/// bit-identical to predict() on the per-format worksheet (pinned by
/// tests/core/batch_identity_test.cpp). @p inputs is validated once;
/// sweep order is preserved.
std::vector<QuantizedThroughputPoint> quantized_throughput_sweep(
    const RatInputs& inputs, double fclock_hz,
    const std::vector<fx::PrecisionChoice>& sweep,
    double channel_word_bytes = 4.0);

}  // namespace rat::core
