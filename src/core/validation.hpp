// Predicted-vs-actual comparison records.
//
// The paper validates RAT by placing measured platform numbers next to the
// worksheet predictions (Tables 3/6/9) and judging accuracy qualitatively
// ("reasonably close", "same order of magnitude"). This module holds the
// measured record, computes per-quantity errors, and encodes those
// qualitative judgements as testable predicates.
#pragma once

#include <string>

#include "core/throughput.hpp"
#include "util/table.hpp"

namespace rat::core {

/// A measured execution of the design on (real or simulated) hardware,
/// expressed per-iteration like the paper's actual columns.
struct Measured {
  double fclock_hz = 0.0;
  double t_comm_sec = 0.0;   ///< per-iteration communication time
  double t_comp_sec = 0.0;   ///< per-iteration computation time
  double t_rc_sec = 0.0;     ///< measured total execution time
  double speedup = 0.0;
  double util_comm = 0.0;
  double util_comp = 0.0;
};

/// Build a Measured record from aggregate totals.
Measured measured_from_totals(double fclock_hz, double total_comm_sec,
                              double total_comp_sec, double total_sec,
                              std::size_t n_iterations, double tsoft_sec);

/// Error analysis of one prediction against one measurement.
struct ValidationReport {
  double comm_error_percent = 0.0;     ///< (actual-pred)/pred * 100
  double comp_error_percent = 0.0;
  double t_rc_error_percent = 0.0;
  double speedup_error_percent = 0.0;
  bool comm_same_order = false;
  bool comp_same_order = false;
  bool speedup_same_order = false;

  /// The paper's headline criterion: every predicted time is within an
  /// order of magnitude of the measurement.
  bool within_order_of_magnitude() const {
    return comm_same_order && comp_same_order && speedup_same_order;
  }

  util::Table to_table() const;
};

ValidationReport validate(const ThroughputPrediction& predicted,
                          const Measured& actual);

}  // namespace rat::core
