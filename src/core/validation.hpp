// Predicted-vs-actual comparison records.
//
// The paper validates RAT by placing measured platform numbers next to the
// worksheet predictions (Tables 3/6/9) and judging accuracy qualitatively
// ("reasonably close", "same order of magnitude"). This module holds the
// measured record, computes per-quantity errors, and encodes those
// qualitative judgements as testable predicates.
#pragma once

#include <string>

#include "core/throughput.hpp"
#include "util/table.hpp"

namespace rat::core {

/// A measured execution of the design on (real or simulated) hardware,
/// expressed per-iteration like the paper's actual columns.
struct Measured {
  double fclock_hz = 0.0;
  double t_comm_sec = 0.0;   ///< per-iteration communication time
  double t_comp_sec = 0.0;   ///< per-iteration computation time
  double t_rc_sec = 0.0;     ///< measured total execution time
  double speedup = 0.0;
  double util_comm = 0.0;
  double util_comp = 0.0;
};

/// Build a Measured record from aggregate totals. Throws
/// std::invalid_argument on zero iterations, a non-positive total, or a
/// non-positive software baseline (a zero/negative tsoft would silently
/// turn the speedup into nonsense).
Measured measured_from_totals(double fclock_hz, double total_comm_sec,
                              double total_comp_sec, double total_sec,
                              std::size_t n_iterations, double tsoft_sec);

/// Error analysis of one prediction against one measurement. Error
/// percents are signed ((actual-pred)/pred * 100, negative =
/// over-prediction); to_table() prints their magnitude, matching the
/// paper's Tables 5-10 which report absolute error %.
struct ValidationReport {
  double comm_error_percent = 0.0;     ///< (actual-pred)/pred * 100
  double comp_error_percent = 0.0;
  double t_rc_error_percent = 0.0;
  double speedup_error_percent = 0.0;
  bool comm_same_order = false;
  bool comp_same_order = false;
  bool speedup_same_order = false;

  /// The paper's headline criterion: every predicted time is within an
  /// order of magnitude of the measurement.
  bool within_order_of_magnitude() const {
    return comm_same_order && comp_same_order && speedup_same_order;
  }

  util::Table to_table() const;
};

/// Score @p predicted against @p actual. @p mode selects which predicted
/// execution time and speedup the measurement is compared with (per-
/// iteration tcomm/tcomp are buffering-independent); scoring a double-
/// buffered measurement against the single-buffered prediction inflates
/// the reported error by the overlap factor. Defaults to single buffered,
/// the paper's published comparisons.
ValidationReport validate(const ThroughputPrediction& predicted,
                          const Measured& actual,
                          BufferingMode mode = BufferingMode::kSingle);

}  // namespace rat::core
