#include "core/calibration.hpp"

#include <cmath>
#include <set>
#include <stdexcept>

namespace rat::core {

rcsim::LinkDirection LinkFit::to_direction(double rearm_sec) const {
  return rcsim::LinkDirection{fixed_overhead_sec, sustained_bw, rearm_sec};
}

double LinkFit::alpha_at(std::size_t bytes, double documented_bw) const {
  if (bytes == 0 || documented_bw <= 0.0) return 0.0;
  const double t =
      fixed_overhead_sec + static_cast<double>(bytes) / sustained_bw;
  return static_cast<double>(bytes) / documented_bw / t;
}

LinkFit fit_link_direction(std::span<const TransferSample> samples) {
  if (samples.size() < 2)
    throw std::invalid_argument("fit_link_direction: need >= 2 samples");
  std::set<std::size_t> sizes;
  for (const auto& s : samples) {
    if (s.time_sec <= 0.0)
      throw std::invalid_argument("fit_link_direction: non-positive time");
    sizes.insert(s.bytes);
  }
  if (sizes.size() < 2)
    throw std::invalid_argument(
        "fit_link_direction: need >= 2 distinct sizes");

  // Ordinary least squares of time on bytes: time = a + b * bytes.
  const double n = static_cast<double>(samples.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (const auto& s : samples) {
    const double x = static_cast<double>(s.bytes);
    sx += x;
    sy += s.time_sec;
    sxx += x * x;
    sxy += x * s.time_sec;
  }
  const double denom = n * sxx - sx * sx;
  const double b = (n * sxy - sx * sy) / denom;
  const double a = (sy - b * sx) / n;
  if (b <= 0.0)
    throw std::invalid_argument(
        "fit_link_direction: non-positive per-byte cost; data does not fit "
        "the latency+bandwidth model");

  LinkFit fit;
  // A slightly negative intercept can fall out of noisy data; clamp to a
  // zero-overhead link rather than rejecting.
  fit.fixed_overhead_sec = std::max(0.0, a);
  fit.sustained_bw = 1.0 / b;

  const double mean_y = sy / n;
  double ss_res = 0.0, ss_tot = 0.0;
  for (const auto& s : samples) {
    const double model = a + b * static_cast<double>(s.bytes);
    ss_res += (s.time_sec - model) * (s.time_sec - model);
    ss_tot += (s.time_sec - mean_y) * (s.time_sec - mean_y);
    fit.max_relative_residual =
        std::fmax(fit.max_relative_residual,
                  std::fabs(model - s.time_sec) / s.time_sec);
  }
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

std::pair<LinkFit, LinkFit> calibrate_from_microbench(
    const rcsim::Link& link, const std::vector<std::size_t>& sizes,
    int repeats, std::uint64_t seed) {
  rcsim::Microbench mb(link, repeats, seed);
  std::vector<TransferSample> h2f, f2h;
  for (std::size_t bytes : sizes) {
    h2f.push_back({bytes,
                   mb.measure(bytes, rcsim::Direction::kHostToFpga).time_sec});
    f2h.push_back({bytes,
                   mb.measure(bytes, rcsim::Direction::kFpgaToHost).time_sec});
  }
  return {fit_link_direction(h2f), fit_link_direction(f2h)};
}

}  // namespace rat::core
