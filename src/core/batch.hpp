// Structure-of-arrays batch evaluation of the throughput test.
//
// The analytic model (Eqs. 1-11) is a handful of flops per design point,
// which is exactly why RAT can afford to score every permutation of a
// design space (paper §3, Fig. 1) — but only if the evaluator's overhead
// does not dwarf the flops. predict() pays a full worksheet validation,
// a struct gather and a function call per point; ThroughputBatch amortizes
// all of that: points are validated once as they are appended into
// contiguous per-field arrays, and predict_batch() then sweeps the arrays
// with a width-agnostic SIMD kernel (util/simd.hpp) writing contiguous
// output columns — no per-point allocation, no per-point validation.
//
// Bit-identity contract: predict_batch() produces, for every point, the
// byte-identical ThroughputPrediction that predict() would return — with
// scalar lanes, AVX2 lanes or NEON lanes, in any mix of main-loop and
// tail evaluation. See docs/VECTORIZATION.md for why this holds (exactly
// rounded lane ops, no FMA contraction, no reassociation) and
// tests/core/batch_identity_test.cpp for the property suite pinning it.
//
// Typical use (one batch per thread-pool chunk, reused across chunks):
//
//   thread_local ThroughputBatch batch;
//   batch.clear();                       // keeps capacity
//   for (...) batch.push_back(inputs, fclock);
//   predict_batch(batch);
//   ... batch.out.speedup_sb[i] or batch.prediction(i) ...
#pragma once

#include <cstddef>
#include <vector>

#include "core/throughput.hpp"

namespace rat::core {

/// Which inner loop predict_batch runs. kAuto uses the widest lane the
/// build provides (scalar when RAT_SIMD=off/scalar); kScalar forces the
/// width-1 reference loop — results are bit-identical either way, so the
/// switch exists for tests and benchmarks, not for correctness.
enum class BatchKernel { kAuto, kScalar, kSimd };

struct ThroughputBatch {
  /// One contiguous array per worksheet field consumed by Eqs. 1-11.
  /// Integer fields (element counts, Niter) are stored as their exact
  /// double casts — the same cast the scalar path performs per call.
  struct InputColumns {
    std::vector<double> elements_in, elements_out, bytes_per_elem, ideal_bw,
        alpha_write, alpha_read, ops_per_elem, throughput_proc, n_iterations,
        tsoft, fclock;
  };

  /// One contiguous array per derived quantity; sized by predict_batch.
  struct OutputColumns {
    std::vector<double> t_write, t_read, t_comm, t_comp, t_rc_sb, t_rc_db,
        speedup_sb, speedup_db, util_comp_sb, util_comm_sb, util_comp_db,
        util_comm_db;
  };

  InputColumns in;
  OutputColumns out;

  std::size_t size() const { return in.elements_in.size(); }
  bool empty() const { return in.elements_in.empty(); }

  /// Pre-size every input column's capacity (outputs are sized on demand).
  void reserve(std::size_t n);

  /// Drop all points but keep every column's capacity, so a batch reused
  /// across chunks allocates only on its first, largest fill.
  void clear();

  /// Validate @p inputs (and @p fclock_hz > 0) exactly like predict(),
  /// then append one point.
  void push_back(const RatInputs& inputs, double fclock_hz);

  /// Append one point without validation: the caller guarantees
  /// inputs.validate() holds and fclock_hz > 0. This is the hot fill path
  /// for loops that validated once up front (Monte Carlo chunks) or that
  /// must defer validation errors (methodology windows). Defined inline:
  /// the per-point fill is half the batch evaluation cost, and keeping it
  /// in the header lets callers' loops absorb the eleven appends.
  void push_back_unchecked(const RatInputs& inputs, double fclock_hz) {
    in.elements_in.push_back(static_cast<double>(inputs.dataset.elements_in));
    in.elements_out.push_back(
        static_cast<double>(inputs.dataset.elements_out));
    in.bytes_per_elem.push_back(inputs.dataset.bytes_per_element);
    in.ideal_bw.push_back(inputs.comm.ideal_bw_bytes_per_sec);
    in.alpha_write.push_back(inputs.comm.alpha_write);
    in.alpha_read.push_back(inputs.comm.alpha_read);
    in.ops_per_elem.push_back(inputs.comp.ops_per_element);
    in.throughput_proc.push_back(inputs.comp.throughput_ops_per_cycle);
    in.n_iterations.push_back(
        static_cast<double>(inputs.software.n_iterations));
    in.tsoft.push_back(inputs.software.tsoft_sec);
    in.fclock.push_back(fclock_hz);
  }

  /// Gather point @p i's outputs into the scalar struct predict() returns.
  /// Only valid after predict_batch(); byte-identical to the scalar call.
  ThroughputPrediction prediction(std::size_t i) const;
};

/// Evaluate Eqs. 1-11 for every point in the batch, filling b.out.
void predict_batch(ThroughputBatch& b, BatchKernel kernel = BatchKernel::kAuto);

/// Name of the lane backend compiled into the batch kernel
/// ("scalar", "avx2" or "neon") and its width in doubles (1, 4, 2).
const char* simd_backend() noexcept;
std::size_t simd_width() noexcept;

}  // namespace rat::core
