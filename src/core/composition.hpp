// Multi-kernel and multi-FPGA composition of RAT analyses.
//
// The paper's future work (§6): "The current methodology was designed to
// support applications involving several algorithms, each with their own
// separate RAT analysis. Further experimentation ... is necessary,
// especially with systems containing multiple FPGAs being increasingly
// deployed." This module implements that composition:
//
//  * predict_composite — an application made of several kernels, each with
//    its own worksheet, chained sequentially on one FPGA (with optional
//    on-chip hand-off that skips the intermediate bus crossings) or
//    pipelined across FPGAs (steady-state throughput set by the slowest
//    stage, like Fig. 2's double buffering generalized to stages).
//  * predict_scaling — one kernel data-parallel across k FPGAs that share
//    the host interconnect: computation divides by k, bus transfers
//    serialize, exposing the communication-bound scaling knee.
//
// Reconfiguration time between sequential kernels is ignored, consistent
// with the paper's treatment of setup costs.
#pragma once

#include <cstddef>
#include <vector>

#include "core/throughput.hpp"
#include "util/table.hpp"

namespace rat::core {

/// One kernel stage of a composite application.
struct StageSpec {
  RatInputs inputs;
  double fclock_hz = 100e6;
  /// When true, this stage's output is consumed on-chip by the next stage:
  /// its read-back and the next stage's write-in are skipped.
  bool output_stays_on_chip = false;
};

enum class CompositionMode {
  kSequential,  ///< stages share one FPGA, run back-to-back per iteration
  kPipelined,   ///< one FPGA per stage; steady state = slowest stage
};

struct StagePrediction {
  ThroughputPrediction prediction;  ///< the stage's standalone analysis
  double t_write_sec = 0.0;         ///< input cost actually charged
  double t_read_sec = 0.0;          ///< output cost actually charged
  double t_stage_sec = 0.0;         ///< per-iteration contribution
};

struct CompositePrediction {
  std::vector<StagePrediction> stages;
  double t_total_sec = 0.0;  ///< whole-application execution time
  double tsoft_total_sec = 0.0;
  double speedup = 0.0;      ///< vs the summed software baselines
  std::size_t bottleneck_stage = 0;  ///< argmax of t_stage
  /// Fraction of total time spent in the bottleneck stage (kSequential) or
  /// the steady-state efficiency of the pipeline (kPipelined).
  double bottleneck_share = 0.0;

  util::Table to_table() const;
};

/// Compose stage analyses. All stages must declare the same Niter (they
/// process the same stream of blocks); throws otherwise.
CompositePrediction predict_composite(const std::vector<StageSpec>& stages,
                                      CompositionMode mode);

/// One point of a multi-FPGA strong-scaling curve.
struct ScalingPoint {
  int n_fpgas = 1;
  double t_comm_sec = 0.0;  ///< per-iteration, all boards (serialized bus)
  double t_comp_sec = 0.0;  ///< per-iteration, slowest board
  double t_rc_sec = 0.0;
  double speedup = 0.0;
  /// Parallel efficiency: speedup / (n_fpgas * single-board speedup).
  double efficiency = 0.0;
};

/// Data-parallel split of one worksheet across 1..max_fpgas boards that
/// share the host interconnect. Double-buffered per board: per-iteration
/// time is max(total bus time, per-board compute). Elements divide as
/// evenly as the integer split allows.
std::vector<ScalingPoint> predict_scaling(const RatInputs& inputs,
                                          double fclock_hz, int max_fpgas);

/// Largest board count that still achieves at least
/// @p min_parallel_efficiency; the knee of the scaling curve.
int max_useful_fpgas(const RatInputs& inputs, double fclock_hz,
                     double min_parallel_efficiency = 0.5,
                     int search_limit = 64);

}  // namespace rat::core
