#include "core/sensitivity.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/parallel_for.hpp"

namespace rat::core {

namespace {

/// Per-iteration time budget implied by a target speedup.
double per_iteration_budget(const RatInputs& inputs, double target_speedup) {
  if (target_speedup <= 0.0)
    throw std::invalid_argument("target speedup must be positive");
  const double t_rc = inputs.software.tsoft_sec / target_speedup;
  return t_rc / static_cast<double>(inputs.software.n_iterations);
}

double comm_time(const RatInputs& inputs) {
  const auto& d = inputs.dataset;
  const auto& c = inputs.comm;
  return static_cast<double>(d.elements_in) * d.bytes_per_element /
             (c.alpha_write * c.ideal_bw_bytes_per_sec) +
         static_cast<double>(d.elements_out) * d.bytes_per_element /
             (c.alpha_read * c.ideal_bw_bytes_per_sec);
}

}  // namespace

std::optional<double> solve_throughput_proc(const RatInputs& inputs,
                                            double fclock_hz,
                                            double target_speedup,
                                            BufferingMode mode) {
  inputs.validate();
  if (fclock_hz <= 0.0)
    throw std::invalid_argument("solve_throughput_proc: bad clock");
  const double budget = per_iteration_budget(inputs, target_speedup);
  const double tcomm = comm_time(inputs);

  // Single buffered: tcomp <= budget - tcomm.
  // Double buffered: tcomp <= budget, provided tcomm <= budget too.
  double tcomp_budget;
  if (mode == BufferingMode::kSingle) {
    tcomp_budget = budget - tcomm;
  } else {
    if (tcomm > budget) return std::nullopt;  // communication bound already
    tcomp_budget = budget;
  }
  if (tcomp_budget <= 0.0) return std::nullopt;

  // Invert Eq. (4): throughput_proc = Nelem*ops / (fclock * tcomp).
  return static_cast<double>(inputs.dataset.elements_in) *
         inputs.comp.ops_per_element / (fclock_hz * tcomp_budget);
}

std::optional<double> solve_fclock(const RatInputs& inputs,
                                   double target_speedup,
                                   BufferingMode mode) {
  inputs.validate();
  const double budget = per_iteration_budget(inputs, target_speedup);
  const double tcomm = comm_time(inputs);
  double tcomp_budget;
  if (mode == BufferingMode::kSingle) {
    tcomp_budget = budget - tcomm;
  } else {
    if (tcomm > budget) return std::nullopt;
    tcomp_budget = budget;
  }
  if (tcomp_budget <= 0.0) return std::nullopt;
  return static_cast<double>(inputs.dataset.elements_in) *
         inputs.comp.ops_per_element /
         (inputs.comp.throughput_ops_per_cycle * tcomp_budget);
}

double speedup_upper_bound(const RatInputs& inputs, BufferingMode mode) {
  inputs.validate();
  const double tcomm = comm_time(inputs);
  // As tcomp -> 0 both modes are limited by communication alone.
  (void)mode;
  const double t_rc =
      static_cast<double>(inputs.software.n_iterations) * tcomm;
  return inputs.software.tsoft_sec / t_rc;
}

std::vector<ThroughputPrediction> sweep_parameter(
    const RatInputs& inputs, const ParamSetter& set,
    const std::vector<double>& values, double fclock_hz,
    std::size_t n_threads) {
  if (!set) throw std::invalid_argument("sweep_parameter: null setter");
  return util::parallel_map(
      values.size(),
      [&](std::size_t i) {
        RatInputs mutated = inputs;
        set(mutated, values[i]);
        return predict(mutated, fclock_hz);
      },
      n_threads);
}

std::vector<TornadoEntry> tornado(const RatInputs& inputs, double fclock_hz,
                                  double fraction, std::size_t n_threads) {
  if (fraction <= 0.0 || fraction >= 1.0)
    throw std::invalid_argument("tornado: fraction outside (0,1)");
  struct Param {
    std::string name;
    ParamSetter set;
    double base;
  };
  const std::vector<Param> params = {
      {"alpha_write",
       [](RatInputs& in, double v) {
         in.comm.alpha_write = std::min(v, 1.0);
       },
       inputs.comm.alpha_write},
      {"alpha_read",
       [](RatInputs& in, double v) {
         in.comm.alpha_read = std::min(v, 1.0);
       },
       inputs.comm.alpha_read},
      {"ops_per_element",
       [](RatInputs& in, double v) { in.comp.ops_per_element = v; },
       inputs.comp.ops_per_element},
      {"throughput_proc",
       [](RatInputs& in, double v) { in.comp.throughput_ops_per_cycle = v; },
       inputs.comp.throughput_ops_per_cycle},
      {"ideal_bandwidth",
       [](RatInputs& in, double v) { in.comm.ideal_bw_bytes_per_sec = v; },
       inputs.comm.ideal_bw_bytes_per_sec},
      {"bytes_per_element",
       [](RatInputs& in, double v) { in.dataset.bytes_per_element = v; },
       inputs.dataset.bytes_per_element},
  };

  // One task per axis; the pre-sort order matches the params table, so the
  // sorted ranking is identical whatever the thread count.
  auto out = util::parallel_map(
      params.size(),
      [&](std::size_t i) {
        const auto& p = params[i];
        RatInputs lo_in = inputs, hi_in = inputs;
        p.set(lo_in, p.base * (1.0 - fraction));
        p.set(hi_in, p.base * (1.0 + fraction));
        const double s_lo = predict(lo_in, fclock_hz).speedup_sb;
        const double s_hi = predict(hi_in, fclock_hz).speedup_sb;
        TornadoEntry e;
        e.parameter = p.name;
        e.speedup_low = std::min(s_lo, s_hi);
        e.speedup_high = std::max(s_lo, s_hi);
        return e;
      },
      n_threads);
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.swing() > b.swing();
  });
  return out;
}

}  // namespace rat::core
