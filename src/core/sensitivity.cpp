#include "core/sensitivity.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/batch.hpp"
#include "util/parallel_for.hpp"

namespace rat::core {

namespace {

/// Per-iteration time budget implied by a target speedup.
double per_iteration_budget(const RatInputs& inputs, double target_speedup) {
  if (target_speedup <= 0.0)
    throw std::invalid_argument("target speedup must be positive");
  const double t_rc = inputs.software.tsoft_sec / target_speedup;
  return t_rc / static_cast<double>(inputs.software.n_iterations);
}

double comm_time(const RatInputs& inputs) {
  const auto& d = inputs.dataset;
  const auto& c = inputs.comm;
  return static_cast<double>(d.elements_in) * d.bytes_per_element /
             (c.alpha_write * c.ideal_bw_bytes_per_sec) +
         static_cast<double>(d.elements_out) * d.bytes_per_element /
             (c.alpha_read * c.ideal_bw_bytes_per_sec);
}

}  // namespace

std::optional<double> solve_throughput_proc(const RatInputs& inputs,
                                            double fclock_hz,
                                            double target_speedup,
                                            BufferingMode mode) {
  inputs.validate();
  if (fclock_hz <= 0.0)
    throw std::invalid_argument("solve_throughput_proc: bad clock");
  const double budget = per_iteration_budget(inputs, target_speedup);
  const double tcomm = comm_time(inputs);

  // Single buffered: tcomp <= budget - tcomm.
  // Double buffered: tcomp <= budget, provided tcomm <= budget too.
  double tcomp_budget;
  if (mode == BufferingMode::kSingle) {
    tcomp_budget = budget - tcomm;
  } else {
    if (tcomm > budget) return std::nullopt;  // communication bound already
    tcomp_budget = budget;
  }
  if (tcomp_budget <= 0.0) return std::nullopt;

  // Invert Eq. (4): throughput_proc = Nelem*ops / (fclock * tcomp).
  return static_cast<double>(inputs.dataset.elements_in) *
         inputs.comp.ops_per_element / (fclock_hz * tcomp_budget);
}

std::optional<double> solve_fclock(const RatInputs& inputs,
                                   double target_speedup,
                                   BufferingMode mode) {
  inputs.validate();
  const double budget = per_iteration_budget(inputs, target_speedup);
  const double tcomm = comm_time(inputs);
  double tcomp_budget;
  if (mode == BufferingMode::kSingle) {
    tcomp_budget = budget - tcomm;
  } else {
    if (tcomm > budget) return std::nullopt;
    tcomp_budget = budget;
  }
  if (tcomp_budget <= 0.0) return std::nullopt;
  return static_cast<double>(inputs.dataset.elements_in) *
         inputs.comp.ops_per_element /
         (inputs.comp.throughput_ops_per_cycle * tcomp_budget);
}

double speedup_upper_bound(const RatInputs& inputs, BufferingMode mode) {
  inputs.validate();
  const double tcomm = comm_time(inputs);
  // As tcomp -> 0 both modes are limited by communication alone.
  (void)mode;
  const double t_rc =
      static_cast<double>(inputs.software.n_iterations) * tcomm;
  return inputs.software.tsoft_sec / t_rc;
}

std::vector<ThroughputPrediction> sweep_parameter(
    const RatInputs& inputs, const ParamSetter& set,
    const std::vector<double>& values, double fclock_hz,
    std::size_t n_threads) {
  if (!set) throw std::invalid_argument("sweep_parameter: null setter");
  const std::size_t n = values.size();
  std::vector<ThroughputPrediction> out(n);
  if (n == 0) return out;

  // Fixed chunk size (like Monte Carlo's) so the work decomposition — and
  // with it any validation error a bad sweep value raises — never depends
  // on the thread count. Each chunk mutates a reusable scratch worksheet
  // per value, appends it into a per-thread SoA batch (push_back validates
  // exactly like predict() did per point), evaluates the whole chunk in
  // one kernel sweep and scatters into the chunk's slice of the output.
  constexpr std::size_t kSweepChunk = 512;
  const std::size_t n_chunks = (n + kSweepChunk - 1) / kSweepChunk;
  util::parallel_for(
      n_chunks,
      [&](std::size_t c) {
        thread_local ThroughputBatch batch;
        thread_local RatInputs scratch;
        const std::size_t lo = c * kSweepChunk;
        const std::size_t count = std::min(kSweepChunk, n - lo);
        batch.clear();
        batch.reserve(count);
        for (std::size_t k = 0; k < count; ++k) {
          scratch = inputs;
          set(scratch, values[lo + k]);
          batch.push_back(scratch, fclock_hz);
        }
        predict_batch(batch);
        for (std::size_t k = 0; k < count; ++k)
          out[lo + k] = batch.prediction(k);
      },
      n_threads);
  return out;
}

std::vector<TornadoEntry> tornado(const RatInputs& inputs, double fclock_hz,
                                  double fraction, std::size_t n_threads) {
  if (fraction <= 0.0 || fraction >= 1.0)
    throw std::invalid_argument("tornado: fraction outside (0,1)");
  struct Param {
    std::string name;
    ParamSetter set;
    double base;
  };
  const std::vector<Param> params = {
      {"alpha_write",
       [](RatInputs& in, double v) {
         in.comm.alpha_write = std::min(v, 1.0);
       },
       inputs.comm.alpha_write},
      {"alpha_read",
       [](RatInputs& in, double v) {
         in.comm.alpha_read = std::min(v, 1.0);
       },
       inputs.comm.alpha_read},
      {"ops_per_element",
       [](RatInputs& in, double v) { in.comp.ops_per_element = v; },
       inputs.comp.ops_per_element},
      {"throughput_proc",
       [](RatInputs& in, double v) { in.comp.throughput_ops_per_cycle = v; },
       inputs.comp.throughput_ops_per_cycle},
      {"ideal_bandwidth",
       [](RatInputs& in, double v) { in.comm.ideal_bw_bytes_per_sec = v; },
       inputs.comm.ideal_bw_bytes_per_sec},
      {"bytes_per_element",
       [](RatInputs& in, double v) { in.dataset.bytes_per_element = v; },
       inputs.dataset.bytes_per_element},
  };

  // Two points per axis, all twelve evaluated in a single SoA batch — a
  // tornado is far below the size where spreading it over the pool pays,
  // and the batch kernel keeps the speedups bit-identical to per-point
  // predict() calls, so results are unchanged at any requested thread
  // count. The fill order (param-major, low then high) matches the old
  // serial evaluation order, so a validation failure from an out-of-domain
  // perturbation surfaces with the same diagnostic it always did.
  (void)n_threads;
  ThroughputBatch batch;
  batch.reserve(2 * params.size());
  for (const auto& p : params) {
    RatInputs lo_in = inputs, hi_in = inputs;
    p.set(lo_in, p.base * (1.0 - fraction));
    p.set(hi_in, p.base * (1.0 + fraction));
    batch.push_back(lo_in, fclock_hz);
    batch.push_back(hi_in, fclock_hz);
  }
  predict_batch(batch);
  std::vector<TornadoEntry> out;
  out.reserve(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    const double s_lo = batch.out.speedup_sb[2 * i];
    const double s_hi = batch.out.speedup_sb[2 * i + 1];
    TornadoEntry e;
    e.parameter = params[i].name;
    e.speedup_low = std::min(s_lo, s_hi);
    e.speedup_high = std::max(s_lo, s_hi);
    out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.swing() > b.swing();
  });
  return out;
}

}  // namespace rat::core
