#include "core/resources.hpp"

#include <stdexcept>

#include "util/format.hpp"

namespace rat::core {

util::Table ResourceTestResult::to_table(const rcsim::Device& device) const {
  util::Table t({"FPGA Resource", "Utilization"});
  t.add_row({device.dsp_unit_name + "s",
             util::percent(utilization.dsp_fraction)});
  t.add_row({device.bram_unit_name + "s",
             util::percent(utilization.bram_fraction)});
  t.add_row({device.logic_unit_name,
             util::percent(utilization.logic_fraction)});
  return t;
}

ResourceTestResult run_resource_test(const std::vector<ResourceItem>& items,
                                     const rcsim::Device& device,
                                     double practical_fill_limit) {
  rcsim::ResourceTracker tracker(device.inventory, practical_fill_limit);
  for (const auto& item : items) {
    if (item.instances <= 0)
      throw std::invalid_argument("run_resource_test: instances <= 0 for " +
                                  item.name);
    rcsim::ResourceUsage u;
    if (item.multiplier_count > 0)
      u.dsp = item.multiplier_count *
              device.dsp_per_multiplier(item.multiplier_bits);
    u.bram = device.bram_for_bytes(item.buffer_bytes);
    u.logic = item.logic_elements;
    tracker.add(item.name, u * item.instances);
  }
  ResourceTestResult r;
  r.usage = tracker.total();
  r.utilization = tracker.report();
  r.feasible = tracker.feasible();
  r.device_name = device.name;
  r.breakdown = tracker.components();
  return r;
}

}  // namespace rat::core
