// The RAT resource test (paper §3.3).
//
// A-priori resource estimation against the target device: count the
// dedicated multipliers the kernels need (via the vendor cost model in
// rcsim::Device), the BRAM for I/O and intra-application buffering, and an
// approximate logic budget, then check feasibility under a practical fill
// limit. Produces the layout of paper Tables 4/7/10.
#pragma once

#include <string>
#include <vector>

#include "rcsim/device.hpp"
#include "rcsim/resources.hpp"
#include "util/table.hpp"

namespace rat::core {

/// A named contribution to the design's resource demand, in design-level
/// terms (multipliers of a width, buffer bytes, logic estimate) that the
/// test lowers onto a specific device.
struct ResourceItem {
  std::string name;
  /// Fixed-point multipliers of this operand width (0 = none).
  int multiplier_count = 0;
  int multiplier_bits = 18;
  /// On-chip buffer storage in bytes.
  std::int64_t buffer_bytes = 0;
  /// Estimated basic logic elements (slices/ALUTs) for control, adders,
  /// registers. High-level estimates only — the paper stresses a precise
  /// count is impossible pre-HDL.
  std::int64_t logic_elements = 0;
  /// Instances of this item in the design.
  int instances = 1;
};

/// Result of lowering a design onto a device.
struct ResourceTestResult {
  rcsim::ResourceUsage usage;
  rcsim::UtilizationReport utilization;
  bool feasible = false;
  std::string device_name;
  /// Per-item lowered usage for diagnostics.
  std::vector<rcsim::ResourceTracker::Component> breakdown;

  /// Render in the layout of paper Tables 4/7/10 ("FPGA Resource |
  /// Utilization" with device-appropriate row names).
  util::Table to_table(const rcsim::Device& device) const;
};

/// Run the resource test for @p items on @p device.
ResourceTestResult run_resource_test(const std::vector<ResourceItem>& items,
                                     const rcsim::Device& device,
                                     double practical_fill_limit = 0.9);

}  // namespace rat::core
