#include "core/montecarlo.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/parallel_for.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace rat::core {

InputDistribution InputDistribution::uniform(double lo, double hi) {
  if (!(lo < hi))
    throw std::invalid_argument("InputDistribution::uniform: lo >= hi");
  InputDistribution d;
  d.kind = Kind::kUniform;
  d.lo = lo;
  d.hi = hi;
  return d;
}

InputDistribution InputDistribution::normal(double mean, double sigma,
                                            double lo, double hi) {
  if (sigma <= 0.0 || !(lo < hi))
    throw std::invalid_argument("InputDistribution::normal: bad parameters");
  InputDistribution d;
  d.kind = Kind::kNormal;
  d.mean = mean;
  d.sigma = sigma;
  d.lo = lo;
  d.hi = hi;
  return d;
}

UncertaintyModel UncertaintyModel::typical(const RatInputs& inputs) {
  inputs.validate();
  UncertaintyModel m;
  auto pct_band = [](double v, double frac, double cap_hi) {
    return InputDistribution::uniform(v * (1.0 - frac),
                                      std::min(v * (1.0 + frac), cap_hi));
  };
  m.alpha_write = pct_band(inputs.comm.alpha_write, 0.10, 1.0);
  m.alpha_read = pct_band(inputs.comm.alpha_read, 0.10, 1.0);
  m.ops_per_element =
      pct_band(inputs.comp.ops_per_element, 0.25, 1e300);
  m.throughput_proc =
      pct_band(inputs.comp.throughput_ops_per_cycle, 0.25, 1e300);
  const auto [lo, hi] = std::minmax_element(inputs.comp.fclock_hz.begin(),
                                            inputs.comp.fclock_hz.end());
  if (*lo < *hi)
    m.fclock_hz = InputDistribution::uniform(*lo, *hi);
  // tsoft is measured, not estimated: kFixed.
  return m;
}

double sample(const InputDistribution& d, double point_value,
              util::Rng& rng) {
  switch (d.kind) {
    case InputDistribution::Kind::kFixed:
      return point_value;
    case InputDistribution::Kind::kUniform:
      return rng.uniform(d.lo, d.hi);
    case InputDistribution::Kind::kNormal: {
      // Rejection-truncated normal; falls back to clamping after a bounded
      // number of tries so a mis-specified band cannot hang the sampler.
      // The fallback clamps the *last rejected draw*, not the mean:
      // clamping the mean collapsed every fallback sample to the same
      // constant, silently removing all variance when the band sits far
      // from the mean.
      double x = d.mean;
      for (int tries = 0; tries < 64; ++tries) {
        x = rng.normal(d.mean, d.sigma);
        if (x >= d.lo && x <= d.hi) return x;
      }
      return std::clamp(x, d.lo, d.hi);
    }
  }
  throw std::logic_error("unreachable");
}

namespace {

/// Chunk size for parallel sampling. Fixed (never derived from the thread
/// count) so the overall sample sequence depends only on the seed: chunk c
/// always covers samples [c*1024, (c+1)*1024) from stream `seed + c`.
constexpr std::size_t kChunkSamples = 1024;

/// Samples drawn by one chunk, merged in chunk order afterwards.
struct SampleChunk {
  std::vector<double> s_sb, s_db, t_rc, t_comm, t_comp;
  std::size_t meets_goal = 0;
};

SampleChunk sample_chunk(const RatInputs& inputs,
                         const UncertaintyModel& model, std::size_t count,
                         double goal_speedup, std::uint64_t chunk_seed) {
  util::Rng rng(chunk_seed);
  SampleChunk chunk;
  chunk.s_sb.reserve(count);
  chunk.s_db.reserve(count);
  chunk.t_rc.reserve(count);
  chunk.t_comm.reserve(count);
  chunk.t_comp.reserve(count);

  const double base_clock = inputs.comp.fclock_hz.front();
  for (std::size_t i = 0; i < count; ++i) {
    RatInputs perturbed = inputs;
    perturbed.comm.alpha_write =
        std::min(1.0, sample(model.alpha_write, inputs.comm.alpha_write, rng));
    perturbed.comm.alpha_read =
        std::min(1.0, sample(model.alpha_read, inputs.comm.alpha_read, rng));
    perturbed.comp.ops_per_element =
        sample(model.ops_per_element, inputs.comp.ops_per_element, rng);
    perturbed.comp.throughput_ops_per_cycle = sample(
        model.throughput_proc, inputs.comp.throughput_ops_per_cycle, rng);
    perturbed.software.tsoft_sec =
        sample(model.tsoft_sec, inputs.software.tsoft_sec, rng);
    const double fclock = sample(model.fclock_hz, base_clock, rng);

    const ThroughputPrediction p = predict(perturbed, fclock);
    chunk.s_sb.push_back(p.speedup_sb);
    chunk.s_db.push_back(p.speedup_db);
    chunk.t_rc.push_back(p.t_rc_sb_sec);
    chunk.t_comm.push_back(p.t_comm_sec);
    chunk.t_comp.push_back(p.t_comp_sec);
    if (goal_speedup > 0.0 && p.speedup_sb >= goal_speedup)
      ++chunk.meets_goal;
  }
  return chunk;
}

}  // namespace

Percentiles percentiles_of(std::vector<double>& xs) {
  if (xs.empty())
    throw std::invalid_argument("percentiles_of: empty input");
  std::sort(xs.begin(), xs.end());
  auto at = [&](double q) {
    const double idx = q * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(idx);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
  };
  Percentiles p;
  p.p10 = at(0.10);
  p.p50 = at(0.50);
  p.p90 = at(0.90);
  p.mean = util::mean(xs);
  return p;
}

MonteCarloResult run_monte_carlo(const RatInputs& inputs,
                                 const UncertaintyModel& model,
                                 std::size_t n, double goal_speedup,
                                 std::uint64_t seed, std::size_t n_threads) {
  inputs.validate();
  if (n < 2) throw std::invalid_argument("run_monte_carlo: n < 2");

  obs::ScopedTimer run_timer("montecarlo.run");
  if (obs::enabled())
    obs::Registry::global().add_counter("montecarlo.samples", n);

  const std::size_t n_chunks = (n + kChunkSamples - 1) / kChunkSamples;
  std::vector<SampleChunk> chunks(n_chunks);
  util::parallel_for(
      n_chunks,
      [&](std::size_t c) {
        obs::ScopedTimer chunk_timer("montecarlo.chunk");
        const std::size_t lo = c * kChunkSamples;
        const std::size_t count = std::min(kChunkSamples, n - lo);
        chunks[c] = sample_chunk(inputs, model, count, goal_speedup,
                                 seed + static_cast<std::uint64_t>(c));
      },
      n_threads);

  std::vector<double> s_sb, s_db, t_rc, t_comm, t_comp;
  s_sb.reserve(n);
  s_db.reserve(n);
  t_rc.reserve(n);
  t_comm.reserve(n);
  t_comp.reserve(n);
  std::size_t meets_goal = 0;
  for (auto& chunk : chunks) {
    s_sb.insert(s_sb.end(), chunk.s_sb.begin(), chunk.s_sb.end());
    s_db.insert(s_db.end(), chunk.s_db.begin(), chunk.s_db.end());
    t_rc.insert(t_rc.end(), chunk.t_rc.begin(), chunk.t_rc.end());
    t_comm.insert(t_comm.end(), chunk.t_comm.begin(), chunk.t_comm.end());
    t_comp.insert(t_comp.end(), chunk.t_comp.begin(), chunk.t_comp.end());
    meets_goal += chunk.meets_goal;
  }

  MonteCarloResult r;
  r.n_samples = n;
  r.speedup_db = percentiles_of(s_db);
  r.t_rc_sb_sec = percentiles_of(t_rc);
  r.t_comm_sec = percentiles_of(t_comm);
  r.t_comp_sec = percentiles_of(t_comp);
  r.speedup_sb = percentiles_of(s_sb);  // sorts s_sb
  r.probability_of_goal =
      goal_speedup > 0.0
          ? static_cast<double>(meets_goal) / static_cast<double>(n)
          : 0.0;
  r.speedup_sb_samples = std::move(s_sb);
  return r;
}

}  // namespace rat::core
