#include "core/montecarlo.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/batch.hpp"
#include "obs/metrics.hpp"
#include "util/parallel_for.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace rat::core {

InputDistribution InputDistribution::uniform(double lo, double hi) {
  if (!(lo < hi))
    throw std::invalid_argument("InputDistribution::uniform: lo >= hi");
  InputDistribution d;
  d.kind = Kind::kUniform;
  d.lo = lo;
  d.hi = hi;
  return d;
}

InputDistribution InputDistribution::normal(double mean, double sigma,
                                            double lo, double hi) {
  if (sigma <= 0.0 || !(lo < hi))
    throw std::invalid_argument("InputDistribution::normal: bad parameters");
  InputDistribution d;
  d.kind = Kind::kNormal;
  d.mean = mean;
  d.sigma = sigma;
  d.lo = lo;
  d.hi = hi;
  return d;
}

UncertaintyModel UncertaintyModel::typical(const RatInputs& inputs) {
  inputs.validate();
  UncertaintyModel m;
  auto pct_band = [](double v, double frac, double cap_hi) {
    return InputDistribution::uniform(v * (1.0 - frac),
                                      std::min(v * (1.0 + frac), cap_hi));
  };
  m.alpha_write = pct_band(inputs.comm.alpha_write, 0.10, 1.0);
  m.alpha_read = pct_band(inputs.comm.alpha_read, 0.10, 1.0);
  m.ops_per_element =
      pct_band(inputs.comp.ops_per_element, 0.25, 1e300);
  m.throughput_proc =
      pct_band(inputs.comp.throughput_ops_per_cycle, 0.25, 1e300);
  const auto [lo, hi] = std::minmax_element(inputs.comp.fclock_hz.begin(),
                                            inputs.comp.fclock_hz.end());
  if (*lo < *hi)
    m.fclock_hz = InputDistribution::uniform(*lo, *hi);
  // tsoft is measured, not estimated: kFixed.
  return m;
}

double sample(const InputDistribution& d, double point_value,
              util::Rng& rng) {
  switch (d.kind) {
    case InputDistribution::Kind::kFixed:
      return point_value;
    case InputDistribution::Kind::kUniform:
      return rng.uniform(d.lo, d.hi);
    case InputDistribution::Kind::kNormal: {
      // Rejection-truncated normal; falls back to clamping after a bounded
      // number of tries so a mis-specified band cannot hang the sampler.
      // The fallback clamps the *last rejected draw*, not the mean:
      // clamping the mean collapsed every fallback sample to the same
      // constant, silently removing all variance when the band sits far
      // from the mean.
      double x = d.mean;
      for (int tries = 0; tries < 64; ++tries) {
        x = rng.normal(d.mean, d.sigma);
        if (x >= d.lo && x <= d.hi) return x;
      }
      return std::clamp(x, d.lo, d.hi);
    }
  }
  throw std::logic_error("unreachable");
}

namespace {

/// Chunk size for parallel sampling. Fixed (never derived from the thread
/// count) so the overall sample sequence depends only on the seed: chunk c
/// always covers samples [c*1024, (c+1)*1024) from stream `seed + c`.
constexpr std::size_t kChunkSamples = 1024;

/// Destination slices one chunk writes into: chunk c owns rows
/// [c*kChunkSamples, c*kChunkSamples + count) of each column, so chunks
/// never contend and the merged order is the serial order by construction.
struct SampleSink {
  double* s_sb;
  double* s_db;
  double* t_rc;
  double* t_comm;
  double* t_comp;
};

/// Draw one chunk's samples into an SoA batch (scalar — the RNG and the
/// truncated-normal rejection loop are inherently sequential), then
/// evaluate Eqs. 1-11 for the whole chunk in one predict_batch call.
/// Sampling order per point is unchanged from the scalar implementation
/// (alpha_write, alpha_read, ops, throughput_proc, tsoft, fclock), so the
/// sample stream for a given seed is exactly what it was point-wise, and
/// the batch kernel keeps the predictions bit-identical to per-point
/// predict() calls.
std::size_t sample_chunk(const RatInputs& inputs,
                         const UncertaintyModel& model, std::size_t count,
                         double goal_speedup, std::uint64_t chunk_seed,
                         ThroughputBatch& batch, RatInputs& scratch,
                         const SampleSink& sink) {
  util::Rng rng(chunk_seed);
  batch.clear();
  batch.reserve(count);

  const double base_clock = inputs.comp.fclock_hz.front();
  for (std::size_t i = 0; i < count; ++i) {
    const double aw =
        std::min(1.0, sample(model.alpha_write, inputs.comm.alpha_write, rng));
    const double ar =
        std::min(1.0, sample(model.alpha_read, inputs.comm.alpha_read, rng));
    const double ops =
        sample(model.ops_per_element, inputs.comp.ops_per_element, rng);
    const double tp = sample(model.throughput_proc,
                             inputs.comp.throughput_ops_per_cycle, rng);
    const double tsoft =
        sample(model.tsoft_sec, inputs.software.tsoft_sec, rng);
    const double fclock = sample(model.fclock_hz, base_clock, rng);

    scratch.comm.alpha_write = aw;
    scratch.comm.alpha_read = ar;
    scratch.comp.ops_per_element = ops;
    scratch.comp.throughput_ops_per_cycle = tp;
    scratch.software.tsoft_sec = tsoft;
    if (!(aw > 0.0 && ar > 0.0 && ops > 0.0 && tp > 0.0 && tsoft > 0.0 &&
          fclock > 0.0)) {
      // A mis-specified band produced a value outside the model domain
      // (e.g. a normal whose [lo,hi] sits below zero). The scalar path
      // validated every perturbed worksheet; reproduce its exact
      // diagnostic by running the checked single-point call.
      (void)predict(scratch, fclock);
    }
    batch.push_back_unchecked(scratch, fclock);
  }

  predict_batch(batch);

  std::size_t meets_goal = 0;
  for (std::size_t i = 0; i < count; ++i) {
    sink.s_sb[i] = batch.out.speedup_sb[i];
    sink.s_db[i] = batch.out.speedup_db[i];
    sink.t_rc[i] = batch.out.t_rc_sb[i];
    sink.t_comm[i] = batch.out.t_comm[i];
    sink.t_comp[i] = batch.out.t_comp[i];
    if (goal_speedup > 0.0 && batch.out.speedup_sb[i] >= goal_speedup)
      ++meets_goal;
  }
  return meets_goal;
}

}  // namespace

Percentiles percentiles_of(std::vector<double>& xs) {
  if (xs.empty())
    throw std::invalid_argument("percentiles_of: empty input");
  std::sort(xs.begin(), xs.end());
  auto at = [&](double q) {
    const double idx = q * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(idx);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
  };
  Percentiles p;
  p.p10 = at(0.10);
  p.p50 = at(0.50);
  p.p90 = at(0.90);
  p.mean = util::mean(xs);
  return p;
}

MonteCarloResult run_monte_carlo(const RatInputs& inputs,
                                 const UncertaintyModel& model,
                                 std::size_t n, double goal_speedup,
                                 std::uint64_t seed, std::size_t n_threads) {
  inputs.validate();
  if (n < 2) throw std::invalid_argument("run_monte_carlo: n < 2");

  obs::ScopedTimer run_timer("montecarlo.run");
  if (obs::enabled())
    obs::Registry::global().add_counter("montecarlo.samples", n);

  // Result columns are sized once; each chunk fills its own disjoint slice
  // (no per-chunk vectors, no merge copy). Goal counts are per-chunk slots
  // summed afterwards, so the tally is thread-count-invariant too.
  const std::size_t n_chunks = (n + kChunkSamples - 1) / kChunkSamples;
  std::vector<double> s_sb(n), s_db(n), t_rc(n), t_comm(n), t_comp(n);
  std::vector<std::size_t> chunk_goal(n_chunks, 0);
  util::parallel_for(
      n_chunks,
      [&](std::size_t c) {
        obs::ScopedTimer chunk_timer("montecarlo.chunk");
        const std::size_t lo = c * kChunkSamples;
        const std::size_t count = std::min(kChunkSamples, n - lo);
        // One SoA batch and one scratch worksheet per pool thread, reused
        // across every chunk that lands on it: the arena-style buffers
        // mean a steady-state chunk performs no per-point allocation at
        // all (the old path copied a full RatInputs — name string, clock
        // vector — per sample).
        thread_local ThroughputBatch batch;
        thread_local RatInputs scratch;
        scratch = inputs;
        chunk_goal[c] = sample_chunk(
            inputs, model, count, goal_speedup,
            seed + static_cast<std::uint64_t>(c), batch, scratch,
            SampleSink{s_sb.data() + lo, s_db.data() + lo, t_rc.data() + lo,
                       t_comm.data() + lo, t_comp.data() + lo});
      },
      n_threads);
  std::size_t meets_goal = 0;
  for (std::size_t g : chunk_goal) meets_goal += g;

  MonteCarloResult r;
  r.n_samples = n;
  r.speedup_db = percentiles_of(s_db);
  r.t_rc_sb_sec = percentiles_of(t_rc);
  r.t_comm_sec = percentiles_of(t_comm);
  r.t_comp_sec = percentiles_of(t_comp);
  r.speedup_sb = percentiles_of(s_sb);  // sorts s_sb
  r.probability_of_goal =
      goal_speedup > 0.0
          ? static_cast<double>(meets_goal) / static_cast<double>(n)
          : 0.0;
  r.speedup_sb_samples = std::move(s_sb);
  return r;
}

}  // namespace rat::core
