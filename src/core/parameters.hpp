// RAT worksheet input parameters (paper Table 1).
//
// The throughput test consumes four groups of inputs. The names and units
// follow the paper exactly:
//
//   Dataset:       Nelements,input / Nelements,output / Nbytes/element
//   Communication: throughput_ideal (MB/s), alpha_write, alpha_read
//   Computation:   Nops/element, throughput_proc (ops/cycle), fclock (MHz)
//   Software:      tsoft (sec), Niter (iterations)
//
// Naming note (paper convention): "write" is the host writing input data
// *to* the FPGA; "read" is the host reading results back. Fig. 2 labels
// the same transfers from the FPGA's perspective (R = input, W = output).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/table.hpp"

namespace rat::core {

struct DatasetParams {
  std::size_t elements_in = 0;      ///< elements transferred per iteration
  std::size_t elements_out = 0;     ///< result elements per iteration
  double bytes_per_element = 0.0;   ///< numerical precision in bytes
};

struct CommunicationParams {
  double ideal_bw_bytes_per_sec = 0.0;  ///< documented interconnect maximum
  double alpha_write = 0.0;             ///< host->FPGA efficiency, (0,1]
  double alpha_read = 0.0;              ///< FPGA->host efficiency, (0,1]
};

struct ComputationParams {
  double ops_per_element = 0.0;        ///< from algorithm analysis
  double throughput_ops_per_cycle = 0.0;  ///< predicted ops completed/cycle
  std::vector<double> fclock_hz;       ///< candidate clocks to examine
};

struct SoftwareParams {
  double tsoft_sec = 0.0;     ///< baseline software execution time
  std::size_t n_iterations = 1;  ///< Niter: comm/comp blocks for the problem
};

/// A complete RAT worksheet input set for one application design.
struct RatInputs {
  std::string name;
  DatasetParams dataset;
  CommunicationParams comm;
  ComputationParams comp;
  SoftwareParams software;

  /// Throws std::invalid_argument with a precise message when any field is
  /// outside its documented domain (alphas in (0,1], positive sizes, at
  /// least one candidate clock, ...).
  void validate() const;

  /// Render in the layout of paper Tables 2/5/8.
  util::Table to_table() const;

  /// Serialize to a "key = value" text block, and parse one back. The
  /// round-trip is exact for all numeric fields.
  ///
  /// parse is strict (grammar in docs/WORKSHEET_FORMAT.md): numbers go
  /// through locale-independent std::from_chars, malformed clock-list
  /// tokens, duplicate keys, unknown keys and non-finite values are all
  /// rejected at parse time, and every failure is thrown as a
  /// core::ParseError (io/diagnostics.hpp, derives std::invalid_argument)
  /// carrying origin:line:column, the offending key and an error code.
  /// @p origin labels diagnostics (a file path; "<string>" by default).
  std::string serialize() const;
  static RatInputs parse(const std::string& text);
  static RatInputs parse(const std::string& text, const std::string& origin);
};

/// The paper's three case-study worksheets (Tables 2, 5 and 8 verbatim;
/// see EXPERIMENTS.md for the provenance of every constant).
RatInputs pdf1d_inputs();   ///< Table 2 — 1-D PDF estimation
RatInputs pdf2d_inputs();   ///< Table 5 — 2-D PDF estimation
RatInputs md_inputs();      ///< Table 8 — molecular dynamics

}  // namespace rat::core
