// RAT worksheet rendering: the paper's performance tables.
//
// "A worksheet can be constructed based upon Equations (1) through (11).
// Users simply provide the input parameters and the resulting performance
// values are returned." (paper §4). This module renders the input table
// (Tables 2/5/8 layout) and the performance table (Tables 3/6/9 layout:
// one Predicted column per candidate clock, optional Actual columns).
#pragma once

#include <optional>
#include <vector>

#include "core/parameters.hpp"
#include "core/throughput.hpp"
#include "core/validation.hpp"
#include "util/table.hpp"

namespace rat::core {

/// Which buffering mode's rows the performance table shows (the paper's
/// case studies are single buffered).
enum class WorksheetMode { kSingleBuffered, kDoubleBuffered };

/// Build the "Performance parameters" table: rows fclk / tcomm / tcomp /
/// utilcomm / utilcomp / tRC / speedup, one column per prediction, then one
/// per measurement.
util::Table performance_table(const std::vector<ThroughputPrediction>& preds,
                              const std::vector<Measured>& actuals,
                              WorksheetMode mode);

/// Full worksheet: input table + per-clock predictions + optional actuals,
/// rendered to one printable string.
std::string render_worksheet(const RatInputs& inputs,
                             const std::vector<Measured>& actuals,
                             WorksheetMode mode);

}  // namespace rat::core
