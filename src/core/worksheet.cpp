#include "core/worksheet.hpp"

#include <sstream>

#include "core/units.hpp"
#include "util/format.hpp"

namespace rat::core {

util::Table performance_table(const std::vector<ThroughputPrediction>& preds,
                              const std::vector<Measured>& actuals,
                              WorksheetMode mode) {
  std::vector<std::string> headers{"quantity"};
  for (std::size_t i = 0; i < preds.size(); ++i) headers.push_back("Predicted");
  for (std::size_t i = 0; i < actuals.size(); ++i) headers.push_back("Actual");
  util::Table t(headers);

  const bool sb = mode == WorksheetMode::kSingleBuffered;
  auto row = [&](const std::string& label, auto pred_fn, auto act_fn) {
    std::vector<std::string> cells{label};
    for (const auto& p : preds) cells.push_back(pred_fn(p));
    for (const auto& a : actuals) cells.push_back(act_fn(a));
    t.add_row(std::move(cells));
  };

  row("fclk (MHz)",
      [](const ThroughputPrediction& p) {
        return util::fixed(to_mhz(p.fclock_hz), 0);
      },
      [](const Measured& a) { return util::fixed(to_mhz(a.fclock_hz), 0); });
  row("tcomm (sec)",
      [](const ThroughputPrediction& p) { return util::sci(p.t_comm_sec); },
      [](const Measured& a) { return util::sci(a.t_comm_sec); });
  row("tcomp (sec)",
      [](const ThroughputPrediction& p) { return util::sci(p.t_comp_sec); },
      [](const Measured& a) { return util::sci(a.t_comp_sec); });
  row(sb ? "utilcomm_SB" : "utilcomm_DB",
      [sb](const ThroughputPrediction& p) {
        return util::percent(sb ? p.util_comm_sb : p.util_comm_db);
      },
      [](const Measured& a) { return util::percent(a.util_comm); });
  row(sb ? "utilcomp_SB" : "utilcomp_DB",
      [sb](const ThroughputPrediction& p) {
        return util::percent(sb ? p.util_comp_sb : p.util_comp_db);
      },
      [](const Measured& a) { return util::percent(a.util_comp); });
  row(sb ? "tRC_SB (sec)" : "tRC_DB (sec)",
      [sb](const ThroughputPrediction& p) {
        return util::sci(sb ? p.t_rc_sb_sec : p.t_rc_db_sec);
      },
      [](const Measured& a) { return util::sci(a.t_rc_sec); });
  row("speedup",
      [sb](const ThroughputPrediction& p) {
        return util::fixed(sb ? p.speedup_sb : p.speedup_db, 1);
      },
      [](const Measured& a) { return util::fixed(a.speedup, 1); });
  return t;
}

std::string render_worksheet(const RatInputs& inputs,
                             const std::vector<Measured>& actuals,
                             WorksheetMode mode) {
  std::ostringstream os;
  os << "RAT worksheet: " << inputs.name << "\n\n";
  os << "Input parameters\n" << inputs.to_table().to_ascii() << '\n';
  os << "Performance parameters ("
     << (mode == WorksheetMode::kSingleBuffered ? "single" : "double")
     << " buffered)\n"
     << performance_table(predict_all(inputs), actuals, mode).to_ascii();
  return os.str();
}

}  // namespace rat::core
