// This is the only translation unit compiled with the RAT_SIMD_* backend
// macro and vector flags (see src/core/CMakeLists.txt), so the rest of
// rat_core never depends on the vector ISA — the scalar fallback stays a
// plain build.
#include "core/batch.hpp"

#include <stdexcept>

#include "core/throughput_kernel.hpp"

namespace rat::core {

namespace {

/// Append or load/store helpers expand per column; keeping the column
/// list in one macro keeps the 11-input/12-output plumbing in sync.
#define RAT_BATCH_INPUT_COLUMNS(X)                                          \
  X(elements_in)                                                            \
  X(elements_out)                                                           \
  X(bytes_per_elem)                                                         \
  X(ideal_bw)                                                               \
  X(alpha_write)                                                            \
  X(alpha_read)                                                             \
  X(ops_per_elem)                                                           \
  X(throughput_proc)                                                        \
  X(n_iterations)                                                           \
  X(tsoft)                                                                  \
  X(fclock)

#define RAT_BATCH_OUTPUT_COLUMNS(X)                                         \
  X(t_write)                                                                \
  X(t_read)                                                                 \
  X(t_comm)                                                                 \
  X(t_comp)                                                                 \
  X(t_rc_sb)                                                                \
  X(t_rc_db)                                                                \
  X(speedup_sb)                                                             \
  X(speedup_db)                                                             \
  X(util_comp_sb)                                                           \
  X(util_comm_sb)                                                           \
  X(util_comp_db)                                                           \
  X(util_comm_db)

/// Evaluate points [i, i + k*V::kWidth) for the largest k fitting in
/// [i, n); returns the first unevaluated index (the tail for a narrower
/// lane, or n).
template <typename V>
std::size_t run_lanes(const ThroughputBatch::InputColumns& in,
                      ThroughputBatch::OutputColumns& out, std::size_t i,
                      std::size_t n) {
  for (; i + V::kWidth <= n; i += V::kWidth) {
    kernel::InputsV<V> iv;
#define RAT_LOAD(col) iv.col = V::load(in.col.data() + i);
    RAT_BATCH_INPUT_COLUMNS(RAT_LOAD)
#undef RAT_LOAD
    const kernel::OutputsV<V> ov = kernel::evaluate(iv);
#define RAT_STORE(col) ov.col.store(out.col.data() + i);
    RAT_BATCH_OUTPUT_COLUMNS(RAT_STORE)
#undef RAT_STORE
  }
  return i;
}

}  // namespace

void ThroughputBatch::reserve(std::size_t n) {
#define RAT_RESERVE(col) in.col.reserve(n);
  RAT_BATCH_INPUT_COLUMNS(RAT_RESERVE)
#undef RAT_RESERVE
}

void ThroughputBatch::clear() {
#define RAT_CLEAR_IN(col) in.col.clear();
  RAT_BATCH_INPUT_COLUMNS(RAT_CLEAR_IN)
#undef RAT_CLEAR_IN
#define RAT_CLEAR_OUT(col) out.col.clear();
  RAT_BATCH_OUTPUT_COLUMNS(RAT_CLEAR_OUT)
#undef RAT_CLEAR_OUT
}

void ThroughputBatch::push_back(const RatInputs& inputs, double fclock_hz) {
  inputs.validate();
  if (fclock_hz <= 0.0)
    throw std::invalid_argument("predict: non-positive clock");
  push_back_unchecked(inputs, fclock_hz);
}

ThroughputPrediction ThroughputBatch::prediction(std::size_t i) const {
  if (i >= out.speedup_sb.size())
    throw std::out_of_range(
        "ThroughputBatch::prediction: index past evaluated range");
  ThroughputPrediction p;
  p.fclock_hz = in.fclock[i];
  p.t_write_sec = out.t_write[i];
  p.t_read_sec = out.t_read[i];
  p.t_comm_sec = out.t_comm[i];
  p.t_comp_sec = out.t_comp[i];
  p.t_rc_sb_sec = out.t_rc_sb[i];
  p.t_rc_db_sec = out.t_rc_db[i];
  p.speedup_sb = out.speedup_sb[i];
  p.speedup_db = out.speedup_db[i];
  p.util_comp_sb = out.util_comp_sb[i];
  p.util_comm_sb = out.util_comm_sb[i];
  p.util_comp_db = out.util_comp_db[i];
  p.util_comm_db = out.util_comm_db[i];
  return p;
}

void predict_batch(ThroughputBatch& b, BatchKernel kernel) {
  const std::size_t n = b.size();
#define RAT_RESIZE(col) b.out.col.resize(n);
  RAT_BATCH_OUTPUT_COLUMNS(RAT_RESIZE)
#undef RAT_RESIZE

  std::size_t i = 0;
  // kSimd with a scalar-only build is the scalar loop: the width-1
  // "vector" is the reference lane, so forcing it on is always legal.
  if (kernel != BatchKernel::kScalar &&
      util::simd::NativeLane::kWidth > 1) {
    i = run_lanes<util::simd::NativeLane>(b.in, b.out, 0, n);
  }
  run_lanes<util::simd::ScalarLane>(b.in, b.out, i, n);
}

const char* simd_backend() noexcept { return util::simd::kBackendName; }

std::size_t simd_width() noexcept {
  return util::simd::NativeLane::kWidth;
}

}  // namespace rat::core
