// Design/platform comparison and ranking.
//
// The paper's motivation (§1): inexperienced designers "were often unable
// to quantitatively project and compare possible algorithmic design and
// FPGA platform choices for their application." This module compares a set
// of (worksheet, device, clock) candidates side by side: predicted speedup,
// bottleneck, resource feasibility, and a composite verdict — the table a
// design review would actually look at.
#pragma once

#include <string>
#include <vector>

#include "core/resources.hpp"
#include "core/throughput.hpp"
#include "rcsim/device.hpp"
#include "util/table.hpp"

namespace rat::core {

/// One candidate for the comparison.
struct RankedCandidate {
  std::string label;
  RatInputs inputs;
  double fclock_hz = 100e6;
  bool double_buffered = false;
  std::vector<ResourceItem> resources;
  rcsim::Device device;
};

/// A scored candidate.
struct RankedResult {
  std::string label;
  ThroughputPrediction prediction;
  double speedup = 0.0;  ///< in the candidate's buffering mode
  ResourceTestResult resource_result;
  bool feasible = false;
  /// Feasible candidates sort above infeasible ones; within each class,
  /// higher speedup wins.
  bool operator<(const RankedResult& other) const;
};

/// Evaluate and sort candidates, best first.
std::vector<RankedResult> rank_designs(
    const std::vector<RankedCandidate>& candidates);

/// Side-by-side table: label | speedup | comm util | binding resource |
/// max fill | feasible.
util::Table ranking_table(const std::vector<RankedResult>& results);

}  // namespace rat::core
