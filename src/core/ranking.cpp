#include "core/ranking.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/format.hpp"

namespace rat::core {

bool RankedResult::operator<(const RankedResult& other) const {
  if (feasible != other.feasible) return feasible > other.feasible;
  return speedup > other.speedup;
}

std::vector<RankedResult> rank_designs(
    const std::vector<RankedCandidate>& candidates) {
  if (candidates.empty())
    throw std::invalid_argument("rank_designs: no candidates");
  std::vector<RankedResult> out;
  out.reserve(candidates.size());
  for (const auto& c : candidates) {
    RankedResult r;
    r.label = c.label.empty() ? c.inputs.name : c.label;
    r.prediction = predict(c.inputs, c.fclock_hz);
    r.speedup =
        c.double_buffered ? r.prediction.speedup_db : r.prediction.speedup_sb;
    r.resource_result = run_resource_test(c.resources, c.device);
    r.feasible = r.resource_result.feasible;
    out.push_back(std::move(r));
  }
  std::stable_sort(out.begin(), out.end());
  return out;
}

util::Table ranking_table(const std::vector<RankedResult>& results) {
  util::Table t({"rank", "design", "speedup", "util_comm", "binding",
                 "max fill", "feasible"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    t.add_row({std::to_string(i + 1), r.label, util::fixed(r.speedup, 1),
               util::percent(r.prediction.util_comm_sb),
               r.resource_result.utilization.binding_resource(),
               util::percent(r.resource_result.utilization.max_fraction()),
               r.feasible ? "yes" : "NO"});
  }
  return t;
}

}  // namespace rat::core
