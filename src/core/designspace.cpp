#include "core/designspace.hpp"

#include <optional>
#include <stdexcept>

#include "core/units.hpp"
#include "obs/metrics.hpp"
#include "store/checkpoint.hpp"
#include "store/checksum.hpp"
#include "util/format.hpp"

namespace rat::core {

std::uint64_t design_space_campaign_fingerprint(const DesignAxes& axes,
                                                const Requirements& req,
                                                const rcsim::Device& device) {
  store::Fnv1a fp;
  fp.add_string("rat.designspace.v1");
  fp.add_u64(axes.parallelism.size());
  for (std::size_t p : axes.parallelism) fp.add_u64(p);
  fp.add_u64(axes.fclock_hz.size());
  for (double f : axes.fclock_hz) fp.add_double(f);
  fp.add_u64(axes.format_bits.size());
  for (int b : axes.format_bits)
    fp.add_u64(static_cast<std::uint64_t>(b));
  fp.add_u64(requirements_fingerprint(req, device));
  return fp.value();
}

std::string DesignPoint::label() const {
  return std::to_string(parallelism) + "x @ " +
         util::fixed(to_mhz(fclock_hz), 0) + " MHz / " +
         std::to_string(format_bits) + "-bit";
}

namespace {

/// Ascending, duplicate-free axis check. Works for any ordered value type.
template <typename T>
void check_sorted_axis(const std::vector<T>& axis, const char* name) {
  for (std::size_t k = 1; k < axis.size(); ++k) {
    if (axis[k] == axis[k - 1])
      throw std::invalid_argument(std::string("DesignAxes: duplicate ") +
                                  name + " value");
    if (axis[k] < axis[k - 1])
      throw std::invalid_argument(std::string("DesignAxes: ") + name +
                                  " axis not sorted ascending");
  }
}

}  // namespace

void DesignAxes::validate() const {
  if (parallelism.empty() || fclock_hz.empty() || format_bits.empty())
    throw std::invalid_argument("DesignAxes: empty axis");
  for (std::size_t p : parallelism)
    if (p == 0) throw std::invalid_argument("DesignAxes: zero parallelism");
  for (double f : fclock_hz)
    if (f <= 0.0)
      throw std::invalid_argument("DesignAxes: non-positive clock");
  for (int b : format_bits)
    if (b < 2 || b > 63)
      throw std::invalid_argument("DesignAxes: format bits outside [2,63]");
  check_sorted_axis(parallelism, "parallelism");
  check_sorted_axis(fclock_hz, "fclock_hz");
  check_sorted_axis(format_bits, "format_bits");
}

std::size_t DesignAxes::size() const {
  std::size_t n = parallelism.size();
  if (__builtin_mul_overflow(n, fclock_hz.size(), &n) ||
      __builtin_mul_overflow(n, format_bits.size(), &n))
    throw std::overflow_error(
        "DesignAxes::size: " + std::to_string(parallelism.size()) + " x " +
        std::to_string(fclock_hz.size()) + " x " +
        std::to_string(format_bits.size()) +
        " grid points overflow std::size_t");
  return n;
}

std::vector<DesignCandidate> enumerate_design_space(
    const DesignAxes& axes, const CandidateFactory& factory,
    std::vector<std::string>* skipped_labels,
    std::vector<DesignPoint>* points) {
  axes.validate();
  if (!factory)
    throw std::invalid_argument("enumerate_design_space: null factory");
  std::vector<DesignCandidate> out;
  for (std::size_t p : axes.parallelism) {
    for (double f : axes.fclock_hz) {
      for (int bits : axes.format_bits) {
        DesignPoint point{p, f, bits};
        auto cand = factory(point);
        if (!cand) {
          if (skipped_labels) skipped_labels->push_back(point.label());
          continue;
        }
        if (cand->inputs.name.empty()) cand->inputs.name = point.label();
        cand->decision_clock_hz = f;
        if (points) points->push_back(point);
        out.push_back(std::move(*cand));
      }
    }
  }
  return out;
}

DesignSpaceResult explore_design_space(const DesignAxes& axes,
                                       const CandidateFactory& factory,
                                       const Requirements& requirements,
                                       const rcsim::Device& device,
                                       std::size_t n_threads,
                                       const DesignSpaceCheckpoint* checkpoint) {
  obs::ScopedTimer timer("designspace.explore");
  DesignSpaceResult result;
  result.points_total = axes.size();
  auto candidates =
      enumerate_design_space(axes, factory, &result.skipped_labels);
  result.points_skipped = result.skipped_labels.size();
  if (candidates.empty())
    throw std::invalid_argument(
        "explore_design_space: factory skipped every point");
  if (obs::enabled()) {
    obs::Registry& reg = obs::Registry::global();
    reg.add_counter("designspace.points_total", result.points_total);
    reg.add_counter("designspace.points_skipped", result.points_skipped);
    reg.add_counter("designspace.points_evaluated", candidates.size());
  }
  std::optional<store::CampaignCheckpoint> ckpt;
  if (checkpoint != nullptr) {
    store::CampaignCheckpoint::Options opts;
    opts.sync_every_append = checkpoint->sync_every_append;
    ckpt.emplace(
        checkpoint->path, "rat.designspace.v1",
        design_space_campaign_fingerprint(axes, requirements, device), opts);
  }
  result.outcome =
      run_methodology(candidates, requirements, device, n_threads,
                      ckpt ? &*ckpt : nullptr, &result.points_restored);
  if (obs::enabled() && ckpt)
    obs::Registry::global().add_counter("designspace.points_restored",
                                        result.points_restored);
  return result;
}

}  // namespace rat::core
