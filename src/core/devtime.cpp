#include "core/devtime.hpp"

#include <stdexcept>

namespace rat::core {

BreakEvenResult break_even(const ThroughputPrediction& prediction,
                           double tsoft_sec, const BreakEvenInputs& inputs) {
  if (tsoft_sec <= 0.0)
    throw std::invalid_argument("break_even: non-positive tsoft");
  if (inputs.development_hours < 0.0 || inputs.runs_per_month < 0.0 ||
      inputs.months_horizon <= 0.0)
    throw std::invalid_argument("break_even: bad economics inputs");

  BreakEvenResult r;
  r.time_saved_per_run_sec = tsoft_sec - prediction.t_rc_sb_sec;
  r.hours_saved_per_month =
      r.time_saved_per_run_sec * inputs.runs_per_month / 3600.0;
  if (r.hours_saved_per_month > 0.0 && inputs.development_hours >= 0.0) {
    r.break_even_months = inputs.development_hours / r.hours_saved_per_month;
    if (*r.break_even_months > inputs.months_horizon)
      r.break_even_months = std::nullopt;  // not within the window
  }
  r.net_hours_over_horizon =
      r.hours_saved_per_month * inputs.months_horizon -
      inputs.development_hours;
  return r;
}

std::optional<double> required_speedup(double tsoft_sec,
                                       const BreakEvenInputs& inputs) {
  if (tsoft_sec <= 0.0)
    throw std::invalid_argument("required_speedup: non-positive tsoft");
  if (inputs.runs_per_month <= 0.0 || inputs.months_horizon <= 0.0)
    return std::nullopt;
  // Break even at the horizon: saved = dev_hours
  //   (tsoft - tsoft/s) * runs * horizon / 3600 = dev_hours
  //   1 - 1/s = dev_hours * 3600 / (tsoft * runs * horizon)
  const double frac = inputs.development_hours * 3600.0 /
                      (tsoft_sec * inputs.runs_per_month *
                       inputs.months_horizon);
  if (frac >= 1.0) return std::nullopt;  // even s -> inf can't recoup
  if (frac <= 0.0) return 1.0;           // zero effort: any speedup > 1 pays
  return 1.0 / (1.0 - frac);
}

}  // namespace rat::core
