#include "core/composition.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/units.hpp"
#include "util/format.hpp"

namespace rat::core {

namespace {

/// Per-direction transfer times from a worksheet (Eqs. 2/3).
double write_time(const RatInputs& in) {
  return static_cast<double>(in.dataset.elements_in) *
         in.dataset.bytes_per_element /
         (in.comm.alpha_write * in.comm.ideal_bw_bytes_per_sec);
}

double read_time(const RatInputs& in) {
  return static_cast<double>(in.dataset.elements_out) *
         in.dataset.bytes_per_element /
         (in.comm.alpha_read * in.comm.ideal_bw_bytes_per_sec);
}

double comp_time(const RatInputs& in, double fclock_hz) {
  return static_cast<double>(in.dataset.elements_in) *
         in.comp.ops_per_element /
         (fclock_hz * in.comp.throughput_ops_per_cycle);
}

}  // namespace

util::Table CompositePrediction::to_table() const {
  util::Table t({"stage", "t_write", "t_comp", "t_read", "t_stage",
                 "standalone speedup"});
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const auto& s = stages[i];
    t.add_row({std::to_string(i) + (i == bottleneck_stage ? " *" : ""),
               util::sci(s.t_write_sec), util::sci(s.prediction.t_comp_sec),
               util::sci(s.t_read_sec), util::sci(s.t_stage_sec),
               util::fixed(s.prediction.speedup_sb, 1)});
  }
  return t;
}

CompositePrediction predict_composite(const std::vector<StageSpec>& stages,
                                      CompositionMode mode) {
  if (stages.empty())
    throw std::invalid_argument("predict_composite: no stages");
  const std::size_t niter = stages.front().inputs.software.n_iterations;
  for (const auto& s : stages) {
    s.inputs.validate();
    if (s.fclock_hz <= 0.0)
      throw std::invalid_argument("predict_composite: non-positive clock");
    if (s.inputs.software.n_iterations != niter)
      throw std::invalid_argument(
          "predict_composite: stages disagree on Niter");
  }
  if (stages.back().output_stays_on_chip)
    throw std::invalid_argument(
        "predict_composite: final stage output must return to the host");

  CompositePrediction out;
  out.stages.reserve(stages.size());
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const auto& spec = stages[i];
    StagePrediction sp;
    sp.prediction = predict(spec.inputs, spec.fclock_hz);
    // On-chip hand-off: stage i-1 marked output_stays_on_chip suppresses
    // both its own read-back and this stage's write-in.
    const bool receives_on_chip =
        i > 0 && stages[i - 1].output_stays_on_chip;
    sp.t_write_sec = receives_on_chip ? 0.0 : write_time(spec.inputs);
    sp.t_read_sec = spec.output_stays_on_chip ? 0.0 : read_time(spec.inputs);
    sp.t_stage_sec =
        sp.t_write_sec + sp.t_read_sec + comp_time(spec.inputs, spec.fclock_hz);
    out.tsoft_total_sec += spec.inputs.software.tsoft_sec;
    out.stages.push_back(sp);
  }

  double sum = 0.0, worst = 0.0;
  for (std::size_t i = 0; i < out.stages.size(); ++i) {
    sum += out.stages[i].t_stage_sec;
    if (out.stages[i].t_stage_sec > worst) {
      worst = out.stages[i].t_stage_sec;
      out.bottleneck_stage = i;
    }
  }

  const double n = static_cast<double>(niter);
  if (mode == CompositionMode::kSequential) {
    out.t_total_sec = n * sum;
    out.bottleneck_share = worst / sum;
  } else {
    // Pipelined across FPGAs: after the fill (one pass through all
    // stages), one result block completes every `worst` seconds.
    out.t_total_sec = sum + (n - 1.0) * worst;
    out.bottleneck_share = worst * n / out.t_total_sec;
  }
  out.speedup = out.tsoft_total_sec / out.t_total_sec;
  return out;
}

std::vector<ScalingPoint> predict_scaling(const RatInputs& inputs,
                                          double fclock_hz, int max_fpgas) {
  inputs.validate();
  if (fclock_hz <= 0.0)
    throw std::invalid_argument("predict_scaling: non-positive clock");
  if (max_fpgas < 1)
    throw std::invalid_argument("predict_scaling: max_fpgas < 1");

  std::vector<ScalingPoint> out;
  out.reserve(static_cast<std::size_t>(max_fpgas));
  double single_speedup = 0.0;
  for (int k = 1; k <= max_fpgas; ++k) {
    // Elements split as evenly as possible; the slowest board carries the
    // ceiling share of the computation. The host bus is shared, so all k
    // boards' transfers serialize.
    const auto elems_in = inputs.dataset.elements_in;
    const auto per_board_in = (elems_in + k - 1) / static_cast<std::size_t>(k);

    RatInputs board = inputs;
    board.dataset.elements_in = per_board_in;

    ScalingPoint p;
    p.n_fpgas = k;
    p.t_comm_sec = write_time(inputs) + read_time(inputs);  // full dataset
    p.t_comp_sec = comp_time(board, fclock_hz);             // slowest board
    // Double buffered per board (Eq. 6 generalized): iteration time is
    // whichever resource saturates first.
    const double per_iter = std::max(p.t_comm_sec, p.t_comp_sec);
    p.t_rc_sec =
        static_cast<double>(inputs.software.n_iterations) * per_iter;
    p.speedup = inputs.software.tsoft_sec / p.t_rc_sec;
    if (k == 1) single_speedup = p.speedup;
    p.efficiency = p.speedup / (static_cast<double>(k) * single_speedup);
    out.push_back(p);
  }
  return out;
}

int max_useful_fpgas(const RatInputs& inputs, double fclock_hz,
                     double min_parallel_efficiency, int search_limit) {
  if (min_parallel_efficiency <= 0.0 || min_parallel_efficiency > 1.0)
    throw std::invalid_argument("max_useful_fpgas: bad efficiency bound");
  const auto curve = predict_scaling(inputs, fclock_hz, search_limit);
  int best = 1;
  for (const auto& p : curve)
    if (p.efficiency >= min_parallel_efficiency) best = p.n_fpgas;
  return best;
}

}  // namespace rat::core
