// Power and energy estimation.
//
// The paper's introduction motivates a whole class of migrations by power
// rather than raw speed: "The high-performance embedded community might
// simply want FPGA performance to parallel a traditional processor since
// savings could come in the form of reduced power usage." RAT itself defers
// power analysis; this module supplies the missing estimate with the same
// pencil-and-paper character as the throughput test: a static term plus
// per-resource-class dynamic terms scaled by clock and utilization, turned
// into energy by the predicted execution times.
#pragma once

#include "core/throughput.hpp"
#include "rcsim/resources.hpp"

namespace rat::core {

/// Per-device power coefficients. Defaults are representative of the
/// paper-era 90 nm parts (Virtex-4 / Stratix-II class).
struct PowerModel {
  double static_watts = 1.5;            ///< quiescent + config overhead
  /// Dynamic power per active unit at 100 MHz; scales linearly with clock.
  double watts_per_dsp_100mhz = 0.012;
  double watts_per_bram_100mhz = 0.008;
  double watts_per_klogic_100mhz = 0.10;  ///< per 1000 logic elements
  /// Interconnect interface power while transferring.
  double io_watts = 0.8;
};

/// Host-processor comparison point.
struct HostPowerModel {
  double busy_watts = 90.0;  ///< paper-era Xeon/Opteron package power
  double idle_watts = 25.0;  ///< host idles while the FPGA computes
};

struct PowerEstimate {
  double fpga_watts = 0.0;        ///< average FPGA power while running
  double fpga_energy_joules = 0.0;  ///< over the predicted tRC (SB)
  double host_energy_joules = 0.0;  ///< host running the software baseline
  /// Host idle energy during the FPGA run is charged to the FPGA side
  /// (the system still burns it), included in fpga_system_energy.
  double fpga_system_energy_joules = 0.0;
  /// host_energy / fpga_system_energy: >1 means the migration saves energy.
  double energy_ratio = 0.0;

  bool saves_energy() const { return energy_ratio > 1.0; }
};

/// Estimate power/energy for a design: @p usage from the resource test,
/// @p prediction from the throughput test at the chosen clock.
PowerEstimate estimate_power(const rcsim::ResourceUsage& usage,
                             const ThroughputPrediction& prediction,
                             double tsoft_sec,
                             const PowerModel& fpga = {},
                             const HostPowerModel& host = {});

/// Minimum speedup at which the migration breaks even on energy alone,
/// for the given average powers (speedup * ratio of powers identity).
double break_even_speedup_for_energy(double fpga_system_watts,
                                     const HostPowerModel& host = {});

}  // namespace rat::core
