#include "core/evaluation.hpp"

#include <stdexcept>

#include "store/codec.hpp"
#include "store/error.hpp"
#include "util/format.hpp"

namespace rat::core {

bool apply_throughput_gate(CandidateEvaluation& ev, std::size_t i,
                           const std::string& name, const Requirements& req,
                           const ThroughputPrediction& pred) {
  ev.prediction = pred;
  const double speedup =
      req.double_buffered ? pred.speedup_db : pred.speedup_sb;
  const bool tp_ok = speedup >= req.min_speedup;
  ev.trace.push_back(
      {i, name, Step::kThroughputTest, tp_ok,
       "predicted speedup " + util::fixed(speedup, 1) + " vs required " +
           util::fixed(req.min_speedup, 1)});
  if (!tp_ok) {
    ev.reject = RejectReason::kInsufficientThroughput;
    ev.trace.push_back({i, name, Step::kRejected, false,
                        "insufficient comm. or comp. throughput"});
  }
  return tp_ok;
}

CandidateEvaluation evaluate_candidate(std::size_t i,
                                       const DesignCandidate& cand,
                                       const Requirements& req,
                                       const rcsim::Device& device,
                                       const ThroughputPrediction& pred) {
  CandidateEvaluation ev;
  const std::string& name = cand.inputs.name;

  // --- Throughput test -------------------------------------------------
  // The prediction was computed up front for the whole enumeration window
  // by the SoA batch kernel — bit-identical to the predict() call that
  // used to live here.
  if (!apply_throughput_gate(ev, i, name, req, pred)) return ev;

  // --- Precision test ---------------------------------------------------
  if (req.precision) {
    if (!cand.precision_kernel)
      throw std::invalid_argument(
          "run_methodology: precision requested but candidate '" + name +
          "' has no precision kernel");
    const PrecisionResult pr = run_precision_test(
        cand.precision_kernel, cand.precision_reference, *req.precision);
    ev.trace.push_back(
        {i, name, Step::kPrecisionTest, pr.satisfied,
         pr.satisfied
             ? "minimum precision " + pr.choice->format.to_string() +
                   " (max err " +
                   util::fixed(pr.choice->report.max_error_percent, 2) + "%)"
             : "no format within tolerance"});
    if (!pr.satisfied) {
      ev.reject = RejectReason::kUnrealizablePrecision;
      ev.trace.push_back({i, name, Step::kRejected, false,
                          "unrealizable precision requirement"});
      return ev;
    }
  }

  // --- Resource test ----------------------------------------------------
  const ResourceTestResult rr =
      run_resource_test(cand.resources, device, req.practical_fill_limit);
  ev.trace.push_back(
      {i, name, Step::kResourceTest, rr.feasible,
       "binding resource " + rr.utilization.binding_resource() + " at " +
           util::percent(rr.utilization.max_fraction())});
  if (!rr.feasible) {
    ev.reject = RejectReason::kInsufficientResources;
    ev.trace.push_back(
        {i, name, Step::kRejected, false, "insufficient resources"});
    return ev;
  }

  // --- Power test (optional extension gate) ------------------------------
  if (req.min_energy_ratio) {
    const PowerEstimate pe =
        estimate_power(rr.usage, pred, cand.inputs.software.tsoft_sec,
                       req.power_model, req.host_power_model);
    const bool power_ok = pe.energy_ratio >= *req.min_energy_ratio;
    ev.trace.push_back(
        {i, name, Step::kPowerTest, power_ok,
         "energy ratio " + util::fixed(pe.energy_ratio, 1) +
             "x vs required " + util::fixed(*req.min_energy_ratio, 1) +
             "x (" + util::fixed(pe.fpga_watts, 1) + " W FPGA)"});
    if (!power_ok) {
      ev.reject = RejectReason::kInsufficientEnergySavings;
      ev.trace.push_back({i, name, Step::kRejected, false,
                          "insufficient energy savings"});
      return ev;
    }
  }

  ev.passed = true;
  ev.trace.push_back({i, name, Step::kProceed, true,
                      "build in HDL/HLL, verify on HW platform"});
  return ev;
}

// --- Evaluation codecs ----------------------------------------------------

namespace {

constexpr std::uint8_t kMaxStep = static_cast<std::uint8_t>(Step::kRejected);
constexpr std::uint8_t kMaxReject =
    static_cast<std::uint8_t>(RejectReason::kInsufficientEnergySavings);

void encode_trailer(std::string& out, const CandidateEvaluation& ev) {
  const ThroughputPrediction& p = ev.prediction;
  for (double v : {p.fclock_hz, p.t_write_sec, p.t_read_sec, p.t_comm_sec,
                   p.t_comp_sec, p.t_rc_sb_sec, p.t_rc_db_sec, p.speedup_sb,
                   p.speedup_db, p.util_comp_sb, p.util_comm_sb,
                   p.util_comp_db, p.util_comm_db})
    store::put_f64(out, v);
  store::put_u8(out, ev.passed ? 1 : 0);
  store::put_u8(out, static_cast<std::uint8_t>(ev.reject));
}

Step decode_step(std::uint8_t step) {
  if (step > kMaxStep)
    throw store::StoreError(store::StoreErrorCode::kCorrupt, "",
                            "checkpoint trace step out of range");
  return static_cast<Step>(step);
}

void decode_trailer(store::Cursor& cur, CandidateEvaluation& ev) {
  ThroughputPrediction& p = ev.prediction;
  for (double* v : {&p.fclock_hz, &p.t_write_sec, &p.t_read_sec,
                    &p.t_comm_sec, &p.t_comp_sec, &p.t_rc_sb_sec,
                    &p.t_rc_db_sec, &p.speedup_sb, &p.speedup_db,
                    &p.util_comp_sb, &p.util_comm_sb, &p.util_comp_db,
                    &p.util_comm_db})
    *v = cur.f64();
  ev.passed = cur.u8() != 0;
  const std::uint8_t reject = cur.u8();
  if (reject > kMaxReject)
    throw store::StoreError(store::StoreErrorCode::kCorrupt, "",
                            "checkpoint reject reason out of range");
  ev.reject = static_cast<RejectReason>(reject);
  cur.expect_done();
}

}  // namespace

std::string encode_evaluation(const CandidateEvaluation& ev) {
  std::string out;
  store::put_u32(out, static_cast<std::uint32_t>(ev.trace.size()));
  for (const TraceEntry& e : ev.trace) {
    store::put_u64(out, e.candidate_index);
    store::put_string(out, e.candidate_name);
    store::put_u8(out, static_cast<std::uint8_t>(e.step));
    store::put_u8(out, e.passed ? 1 : 0);
    store::put_string(out, e.detail);
  }
  encode_trailer(out, ev);
  return out;
}

CandidateEvaluation decode_evaluation(std::string_view payload) {
  store::Cursor cur(payload);
  CandidateEvaluation ev;
  const std::uint32_t n_trace = cur.u32();
  ev.trace.reserve(n_trace);
  for (std::uint32_t t = 0; t < n_trace; ++t) {
    TraceEntry e;
    e.candidate_index = static_cast<std::size_t>(cur.u64());
    e.candidate_name = cur.string();
    e.step = decode_step(cur.u8());
    e.passed = cur.u8() != 0;
    e.detail = cur.string();
    ev.trace.push_back(std::move(e));
  }
  decode_trailer(cur, ev);
  return ev;
}

std::string encode_evaluation_unindexed(const CandidateEvaluation& ev) {
  std::string out;
  store::put_u32(out, static_cast<std::uint32_t>(ev.trace.size()));
  for (const TraceEntry& e : ev.trace) {
    store::put_u8(out, static_cast<std::uint8_t>(e.step));
    store::put_u8(out, e.passed ? 1 : 0);
    store::put_string(out, e.detail);
  }
  encode_trailer(out, ev);
  return out;
}

CandidateEvaluation decode_evaluation_unindexed(std::string_view payload,
                                                std::size_t index,
                                                const std::string& name) {
  store::Cursor cur(payload);
  CandidateEvaluation ev;
  const std::uint32_t n_trace = cur.u32();
  ev.trace.reserve(n_trace);
  for (std::uint32_t t = 0; t < n_trace; ++t) {
    TraceEntry e;
    e.candidate_index = index;
    e.candidate_name = name;
    e.step = decode_step(cur.u8());
    e.passed = cur.u8() != 0;
    e.detail = cur.string();
    ev.trace.push_back(std::move(e));
  }
  decode_trailer(cur, ev);
  return ev;
}

void WindowPredictions::fill(const std::vector<DesignCandidate>& candidates,
                             std::size_t start, std::size_t count) {
  batch.clear();
  batch.reserve(count);
  errors.assign(count, nullptr);
  // Benign placeholder keeping the columns aligned for a deferred-error
  // point; its (never read) outputs stay finite.
  static const RatInputs kPlaceholder = [] {
    RatInputs p;
    p.name = "<invalid>";
    p.dataset = DatasetParams{1, 1, 1.0};
    p.comm = CommunicationParams{1.0, 1.0, 1.0};
    p.comp = ComputationParams{1.0, 1.0, {1.0}};
    p.software = SoftwareParams{1.0, 1};
    return p;
  }();
  for (std::size_t k = 0; k < count; ++k) {
    try {
      batch.push_back(candidates[start + k].inputs,
                      candidates[start + k].decision_clock_hz);
    } catch (...) {
      errors[k] = std::current_exception();
      batch.push_back_unchecked(kPlaceholder, 1.0);
    }
  }
  predict_batch(batch);
}

}  // namespace rat::core
