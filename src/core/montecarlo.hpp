// Monte-Carlo uncertainty propagation for RAT predictions.
//
// RAT's purpose is risk reduction, yet its inputs are estimates with very
// different confidences: alphas come from microbenchmarks (tight), the
// achievable clock is unknown until place-and-route (wide — the paper
// sweeps 75-150 MHz for exactly this reason), and ops/element can be data
// dependent (MD). This module models each worksheet input as a
// distribution, samples full predictions, and reports percentile bands —
// turning the paper's single-point worksheet into a prediction interval.
// An extension beyond the paper, motivated by its §4.2 discussion of
// parameter uncertainty.
#pragma once

#include <cstdint>
#include <vector>

#include "core/throughput.hpp"

namespace rat::util {
class Rng;
}

namespace rat::core {

/// How one scalar input is perturbed across samples.
struct InputDistribution {
  enum class Kind {
    kFixed,      ///< no uncertainty
    kUniform,    ///< uniform in [lo, hi]
    kNormal,     ///< normal(mean, sigma), truncated to [lo, hi]
  };
  Kind kind = Kind::kFixed;
  double lo = 0.0;     ///< lower bound (kUniform/kNormal truncation)
  double hi = 0.0;     ///< upper bound
  double mean = 0.0;   ///< kNormal only
  double sigma = 0.0;  ///< kNormal only

  static InputDistribution fixed() { return {}; }
  static InputDistribution uniform(double lo, double hi);
  static InputDistribution normal(double mean, double sigma, double lo,
                                  double hi);
};

/// Distributions for the uncertain worksheet inputs; anything left kFixed
/// uses the worksheet's point value.
struct UncertaintyModel {
  InputDistribution alpha_write;
  InputDistribution alpha_read;
  InputDistribution ops_per_element;
  InputDistribution throughput_proc;
  InputDistribution fclock_hz;
  InputDistribution tsoft_sec;

  /// A sensible default: ±10% uniform on the alphas, ±25% on
  /// throughput_proc and ops/element, clock uniform over the worksheet's
  /// candidate range, tsoft fixed.
  static UncertaintyModel typical(const RatInputs& inputs);
};

/// Empirical percentiles of a sampled quantity.
struct Percentiles {
  double p10 = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double mean = 0.0;

  /// Width of the 10-90 band relative to the median.
  double relative_spread() const { return (p90 - p10) / p50; }
};

struct MonteCarloResult {
  std::size_t n_samples = 0;
  Percentiles speedup_sb;
  Percentiles speedup_db;
  Percentiles t_rc_sb_sec;
  Percentiles t_comm_sec;
  Percentiles t_comp_sec;
  /// Fraction of samples whose *single-buffered* speedup meets the goal
  /// passed to run(). SB-only by design — the conservative buffering mode
  /// is the risk question RAT asks; a goal met only under double
  /// buffering does not count (docs/MODELS.md §8).
  double probability_of_goal = 0.0;
  /// Raw SB speedup samples, sorted ascending (for downstream plotting).
  std::vector<double> speedup_sb_samples;
};

/// Empirical p10/p50/p90/mean of @p xs, which is sorted in place.
/// Quantile q is read at fractional order-statistic index q*(n-1) with
/// linear interpolation between the two neighbouring sorted samples (the
/// convention NumPy calls "linear"): n=2 puts p50 exactly halfway between
/// the samples. Throws std::invalid_argument on empty input.
Percentiles percentiles_of(std::vector<double>& xs);

/// One draw from @p d (@p point_value when kFixed; needs util::Rng from
/// util/rng.hpp). This is the sampler run_monte_carlo applies to every
/// uncertain input; exposed so custom samplers and tests can use the
/// exact same truncation semantics. kNormal rejection-samples within
/// [lo, hi] and, after 64 rejections, clamps the final rejected draw
/// (never the mean, which would collapse the sample to a constant).
double sample(const InputDistribution& d, double point_value,
              util::Rng& rng);

/// Sample @p n predictions from the model. @p goal_speedup feeds
/// probability_of_goal (pass 0 to skip). Deterministic per seed AND
/// thread-count-invariant: samples are drawn in fixed 1024-sample chunks,
/// chunk c from its own SplitMix64 stream seeded with `seed + c`, so the
/// sample sequence depends only on the seed while chunks may run on any
/// thread. @p n_threads 0 = auto (util::default_thread_count()), 1 =
/// serial, else the requested worker count.
MonteCarloResult run_monte_carlo(const RatInputs& inputs,
                                 const UncertaintyModel& model,
                                 std::size_t n, double goal_speedup,
                                 std::uint64_t seed = 0xA11CE,
                                 std::size_t n_threads = 0);

}  // namespace rat::core
