// Development-time break-even analysis.
//
// The paper's introduction frames the go/no-go decision economically:
// "Other scenarios might place the break-even point (time of development
// versus time saved at execution) at a more conservative factor of ten or
// less." This module makes that arithmetic explicit: given the predicted
// speedup, the software time per run, the expected run frequency and the
// estimated development effort, when does the migration pay for itself?
#pragma once

#include <optional>

#include "core/throughput.hpp"

namespace rat::core {

struct BreakEvenInputs {
  double development_hours = 0.0;   ///< estimated HDL/HLL effort
  double runs_per_month = 0.0;      ///< how often the application executes
  double months_horizon = 24.0;     ///< evaluation window
};

struct BreakEvenResult {
  double time_saved_per_run_sec = 0.0;
  double hours_saved_per_month = 0.0;
  /// Months until cumulative savings cover the development effort;
  /// nullopt when the design never breaks even (speedup <= 1 or no runs).
  std::optional<double> break_even_months;
  /// Net hours saved over the horizon (negative = the migration loses).
  double net_hours_over_horizon = 0.0;

  bool worth_it() const {
    return break_even_months.has_value() && net_hours_over_horizon > 0.0;
  }
};

/// Evaluate the economics of a predicted design (single-buffered speedup).
BreakEvenResult break_even(const ThroughputPrediction& prediction,
                           double tsoft_sec, const BreakEvenInputs& inputs);

/// Minimum speedup that breaks even within the horizon for the given
/// economics (the paper's "factor of ten or less" knob, derived instead of
/// asserted). Returns nullopt when even infinite speedup cannot recoup the
/// effort within the horizon.
std::optional<double> required_speedup(double tsoft_sec,
                                       const BreakEvenInputs& inputs);

}  // namespace rat::core
