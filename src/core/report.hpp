// RAT analysis report writer.
//
// Bundles one application's full analysis — worksheet inputs, per-clock
// predictions, optional measured columns, validation, resource test and
// methodology trace — and renders it as a single Markdown document plus
// machine-readable CSV sidecars, so an analysis can be archived next to
// the design it justified (the worksheet-as-artifact workflow of §4).
#pragma once

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "core/methodology.hpp"
#include "core/parameters.hpp"
#include "core/resources.hpp"
#include "core/throughput.hpp"
#include "core/validation.hpp"

namespace rat::core {

struct Report {
  RatInputs inputs;
  std::vector<ThroughputPrediction> predictions;
  std::vector<Measured> measurements;
  /// Validation of measurement i against the prediction whose clock
  /// matches it (built by finalize()).
  std::vector<ValidationReport> validations;
  std::optional<ResourceTestResult> resources;
  std::optional<rcsim::Device> device;
  std::optional<MethodologyOutcome> methodology;

  /// Fill predictions (from the worksheet's candidate clocks) and pair
  /// each measurement with the matching-clock prediction for validation.
  /// Call after populating inputs/measurements.
  void finalize();

  /// Render the whole report as one Markdown document.
  std::string to_markdown() const;

  /// Write <stem>.md plus <stem>_predictions.csv (one row per clock) and,
  /// when measurements exist, <stem>_validation.csv into @p directory
  /// (created if missing). Returns the Markdown path.
  std::filesystem::path write(const std::filesystem::path& directory,
                              const std::string& stem) const;
};

/// CSV with one row per prediction (all Eq. 1-11 outputs).
std::string predictions_csv(const std::vector<ThroughputPrediction>& preds);

}  // namespace rat::core
