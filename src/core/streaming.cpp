#include "core/streaming.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace rat::core {

double StreamingPrediction::time_for(std::size_t total_elements) const {
  if (sustained_rate <= 0.0)
    throw std::logic_error("StreamingPrediction: zero sustained rate");
  return static_cast<double>(total_elements) / sustained_rate;
}

double StreamingPrediction::speedup_for(std::size_t total_elements,
                                        double tsoft_sec) const {
  if (tsoft_sec <= 0.0)
    throw std::invalid_argument("speedup_for: non-positive tsoft");
  return tsoft_sec / time_for(total_elements);
}

double StreamingPrediction::input_headroom() const {
  return 1.0 - sustained_rate / rate_in;
}
double StreamingPrediction::compute_headroom() const {
  return 1.0 - sustained_rate / rate_comp;
}
double StreamingPrediction::output_headroom() const {
  return 1.0 - sustained_rate / rate_out;
}

StreamingPrediction predict_streaming(const RatInputs& inputs,
                                      double fclock_hz) {
  inputs.validate();
  if (fclock_hz <= 0.0)
    throw std::invalid_argument("predict_streaming: non-positive clock");
  const auto& d = inputs.dataset;
  const auto& c = inputs.comm;

  StreamingPrediction p;
  p.rate_in = c.alpha_write * c.ideal_bw_bytes_per_sec / d.bytes_per_element;
  p.rate_comp =
      fclock_hz * inputs.comp.throughput_ops_per_cycle /
      inputs.comp.ops_per_element;
  // Output channel sustains rate_out output elements/sec; expressed in
  // input-element units via the out/in element ratio.
  const double out_per_in =
      d.elements_in
          ? static_cast<double>(d.elements_out) /
                static_cast<double>(d.elements_in)
          : 0.0;
  if (out_per_in > 0.0) {
    const double raw_out =
        c.alpha_read * c.ideal_bw_bytes_per_sec / d.bytes_per_element;
    p.rate_out = raw_out / out_per_in;
  } else {
    // No output stream (results retained on chip): never the bottleneck.
    p.rate_out = std::numeric_limits<double>::infinity();
  }

  p.sustained_rate = std::min({p.rate_in, p.rate_comp, p.rate_out});
  // Bottleneck classification must be deterministic under ties. The three
  // rates come from different formulas, so mathematically-equal rates can
  // differ by rounding ulps — exact float comparison would then classify
  // by accident of rounding direction. Any rate within a relative
  // kTieTolerance of the minimum counts as tied, and ties resolve by the
  // documented priority: compute > input > output (the compute fabric is
  // the resource the designer controls; channels are platform-fixed).
  constexpr double kTieTolerance = 1e-9;
  const double tie_limit = p.sustained_rate * (1.0 + kTieTolerance);
  if (p.rate_comp <= tie_limit) {
    p.bottleneck = StreamBottleneck::kCompute;
  } else if (p.rate_in <= tie_limit) {
    p.bottleneck = StreamBottleneck::kInput;
  } else {
    p.bottleneck = StreamBottleneck::kOutput;
  }
  return p;
}

}  // namespace rat::core
