// Streaming-mode throughput model.
//
// Paper §3.1: the RAT throughput test "nominally models FPGAs as
// co-processors ... but the framework can be adjusted for streaming
// applications." In streaming mode there is no iteration structure — data
// flows continuously through input channel, fabric and output channel, and
// the sustained rate is set by whichever of the three saturates first:
//
//   rate_in   = alpha_write * BW / bytes_per_element
//   rate_comp = fclock * throughput_proc / ops_per_element
//   rate_out  = alpha_read * BW / bytes_per_element (scaled by out/in ratio)
//
// This is the Niter -> infinity limit of the double-buffered model (Eq. 6)
// with transfers fully overlapped; the tests assert that equivalence.
#pragma once

#include <cstddef>

#include "core/parameters.hpp"

namespace rat::core {

enum class StreamBottleneck { kInput, kCompute, kOutput };

struct StreamingPrediction {
  /// Per-resource sustainable element rates (elements/sec, input-element
  /// units).
  double rate_in = 0.0;
  double rate_comp = 0.0;
  double rate_out = 0.0;
  /// Steady-state sustained rate: min of the three.
  double sustained_rate = 0.0;
  /// The saturated resource. Ties (rates within 1e-9 relative of the
  /// minimum — e.g. mathematically equal rates separated only by
  /// rounding) resolve deterministically: compute > input > output.
  /// Designs with no output stream (elements_out == 0) have
  /// rate_out == +Inf and can never be output-bottlenecked.
  StreamBottleneck bottleneck = StreamBottleneck::kCompute;

  /// Time to stream @p total_elements through at the sustained rate
  /// (startup/fill ignored, as the paper ignores setup costs).
  double time_for(std::size_t total_elements) const;

  /// Speedup over a software baseline that processed the same stream.
  double speedup_for(std::size_t total_elements, double tsoft_sec) const;

  /// Fractional headroom of each non-bottleneck resource (0 = saturated).
  double input_headroom() const;
  double compute_headroom() const;
  double output_headroom() const;
};

/// Evaluate the streaming model at one clock. Uses the worksheet's
/// dataset/communication/computation groups; software/Niter are not
/// consulted (streams have no iteration structure).
StreamingPrediction predict_streaming(const RatInputs& inputs,
                                      double fclock_hz);

}  // namespace rat::core
