#include "core/power.hpp"

#include <stdexcept>

namespace rat::core {

PowerEstimate estimate_power(const rcsim::ResourceUsage& usage,
                             const ThroughputPrediction& prediction,
                             double tsoft_sec, const PowerModel& fpga,
                             const HostPowerModel& host) {
  if (tsoft_sec <= 0.0)
    throw std::invalid_argument("estimate_power: non-positive tsoft");
  if (prediction.t_rc_sb_sec <= 0.0)
    throw std::invalid_argument("estimate_power: non-positive tRC");

  const double clock_scale = prediction.fclock_hz / 100e6;
  PowerEstimate e;
  // Fabric dynamic power scales with clock; the I/O interface burns power
  // only for the communication fraction of the run.
  e.fpga_watts =
      fpga.static_watts +
      clock_scale *
          (static_cast<double>(usage.dsp) * fpga.watts_per_dsp_100mhz +
           static_cast<double>(usage.bram) * fpga.watts_per_bram_100mhz +
           static_cast<double>(usage.logic) / 1000.0 *
               fpga.watts_per_klogic_100mhz) +
      fpga.io_watts * prediction.util_comm_sb;

  e.fpga_energy_joules = e.fpga_watts * prediction.t_rc_sb_sec;
  e.host_energy_joules = host.busy_watts * tsoft_sec;
  e.fpga_system_energy_joules =
      e.fpga_energy_joules + host.idle_watts * prediction.t_rc_sb_sec;
  e.energy_ratio = e.host_energy_joules / e.fpga_system_energy_joules;
  return e;
}

double break_even_speedup_for_energy(double fpga_system_watts,
                                     const HostPowerModel& host) {
  if (fpga_system_watts <= 0.0 || host.busy_watts <= 0.0)
    throw std::invalid_argument(
        "break_even_speedup_for_energy: non-positive power");
  // Energy parity: host.busy * tsoft == fpga_system * tRC
  //   => speedup = tsoft / tRC = fpga_system / host.busy.
  return fpga_system_watts / host.busy_watts;
}

}  // namespace rat::core
