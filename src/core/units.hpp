// Unit conventions and conversion helpers for the RAT core.
//
// All quantities in the public API are plain doubles carrying SI base
// units, with the unit encoded in the variable name suffix:
//   *_sec    seconds          *_hz     hertz
//   *_bytes  bytes            *_bps    bytes per second
// These helpers exist so worksheet code can state values in the paper's
// units (MHz, MB/s) without sprinkling magic multipliers.
#pragma once

namespace rat::core {

/// Megahertz to hertz (the paper lists fclock in MHz).
constexpr double mhz(double v) { return v * 1e6; }

/// Megabytes/second to bytes/second (the paper lists throughput_ideal in
/// MB/s, decimal megabytes as interconnect standards do).
constexpr double mbps(double v) { return v * 1e6; }

/// Kibibytes / mebibytes to bytes for buffer sizes.
constexpr double kib(double v) { return v * 1024.0; }
constexpr double mib(double v) { return v * 1024.0 * 1024.0; }

/// Hertz to megahertz (for display).
constexpr double to_mhz(double hz) { return hz / 1e6; }

}  // namespace rat::core
