// The Figure-1 methodology state machine.
//
// RAT is "applied iteratively during the design process until a suitable
// version of the algorithm is formulated or all reasonable permutations are
// exhausted" (paper §3). The flow per design candidate:
//
//   throughput test --(insufficient comm/comp throughput)--> new design
//        | desirable performance
//   precision test --(unrealizable precision requirement)--> new design
//        | acceptable balance of performance and precision
//   resource test  --(insufficient resources)--------------> new design
//        | fits
//   PROCEED (build in HDL/HLL, verify on the HW platform)
//
// A DesignCandidate packages one design's worksheet plus the artifacts the
// later tests need; MethodologyRun walks an ordered list of candidates and
// records a full decision trace.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/parameters.hpp"
#include "core/power.hpp"
#include "core/precision.hpp"
#include "core/resources.hpp"
#include "core/throughput.hpp"
#include "rcsim/device.hpp"

namespace rat::store {
class CampaignCheckpoint;
}  // namespace rat::store

namespace rat::core {

/// What the designer requires of a migration for it to be worth doing
/// (the paper cites goals from break-even ~1x up to the 50-100x needed to
/// impress "middle management").
struct Requirements {
  double min_speedup = 10.0;
  /// Evaluate speedup with single or double buffering.
  bool double_buffered = false;
  /// Numerical tolerance for the precision test; nullopt skips the test
  /// (e.g. MD, whose HLL design kept single-precision floats).
  std::optional<PrecisionRequirements> precision;
  double practical_fill_limit = 0.9;
  /// Optional fourth gate (an extension past Fig. 1, for the paper's
  /// embedded-community motivation): require the migration to save energy
  /// by at least this factor versus the host baseline. nullopt skips it.
  std::optional<double> min_energy_ratio;
  PowerModel power_model;
  HostPowerModel host_power_model;
};

/// One design alternative under evaluation.
struct DesignCandidate {
  RatInputs inputs;
  /// Clock at which the pass/fail decision is made (a conservative
  /// achievable estimate; the paper uses 100 MHz mid-range).
  double decision_clock_hz = 100e6;
  /// Fixed-point kernel + reference for the precision test (both empty when
  /// Requirements::precision is nullopt).
  fx::FixedKernel precision_kernel;
  std::vector<double> precision_reference;
  /// Design-level resource demand for the resource test.
  std::vector<ResourceItem> resources;
};

enum class Step {
  kThroughputTest,
  kPrecisionTest,
  kResourceTest,
  kPowerTest,
  kProceed,
  kRejected,
};

enum class RejectReason {
  kNone,
  kInsufficientThroughput,     ///< predicted speedup below requirement
  kUnrealizablePrecision,      ///< no format within tolerance
  kInsufficientResources,      ///< design does not fit the device
  kInsufficientEnergySavings,  ///< energy ratio below the optional gate
};

/// One decision-trace record.
struct TraceEntry {
  std::size_t candidate_index = 0;
  std::string candidate_name;
  Step step = Step::kThroughputTest;
  bool passed = false;
  std::string detail;
};

/// Outcome of a full methodology run.
struct MethodologyOutcome {
  bool proceed = false;
  /// Index of the accepted candidate when proceed is true.
  std::optional<std::size_t> accepted_index;
  RejectReason last_reject = RejectReason::kNone;
  std::vector<TraceEntry> trace;

  /// Per-candidate results kept for reporting.
  std::vector<ThroughputPrediction> predictions;

  std::string render_trace() const;
};

/// Evaluate candidates in order against the requirements on the device;
/// stops at the first candidate that passes all applicable tests.
///
/// @p n_threads > 1 (or 0 = auto, i.e. util::default_thread_count())
/// evaluates candidates concurrently in enumeration-order windows while
/// producing a byte-identical outcome: the merged trace, predictions and
/// accepted index match the serial run exactly, because candidates are
/// independent and results are merged in order, truncated at the first
/// passing design. Parallel runs require the candidates' precision
/// kernels (when any) to be safe to call from different threads.
///
/// @p checkpoint, when non-null, makes the run resumable (docs/STORE.md):
/// each candidate's full evaluation is recorded as it completes, keyed by
/// enumeration index + candidate_fingerprint, and a rerun replays
/// recorded evaluations through the same in-order merge — so the resumed
/// outcome (trace strings included) is byte-identical to an
/// uninterrupted run. @p n_restored, when non-null, receives the number
/// of candidates replayed instead of evaluated. The caller owns the
/// checkpoint's campaign identity (see candidate_fingerprint's caveats).
MethodologyOutcome run_methodology(const std::vector<DesignCandidate>& candidates,
                                   const Requirements& req,
                                   const rcsim::Device& device,
                                   std::size_t n_threads = 1,
                                   store::CampaignCheckpoint* checkpoint = nullptr,
                                   std::size_t* n_restored = nullptr);

/// Fingerprint of everything checkpoint replay depends on for one
/// candidate: worksheet inputs (exact double bit patterns), decision
/// clock, resource items and the precision *reference* vector. The
/// precision kernel is an arbitrary functor and cannot be fingerprinted —
/// a kernel whose behaviour changes between runs defeats staleness
/// detection; delete the checkpoint after changing one.
std::uint64_t candidate_fingerprint(const DesignCandidate& candidate);

/// Fingerprint of the campaign-level evaluation context: requirements
/// (every gate and model parameter) and the device inventory. Combined
/// with the axes by explore_design_space to form the campaign identity.
std::uint64_t requirements_fingerprint(const Requirements& req,
                                       const rcsim::Device& device);

}  // namespace rat::core
