#include "core/methodology.hpp"

#include <sstream>
#include <stdexcept>

#include "util/format.hpp"

namespace rat::core {

namespace {
const char* step_name(Step s) {
  switch (s) {
    case Step::kThroughputTest: return "throughput";
    case Step::kPrecisionTest: return "precision";
    case Step::kResourceTest: return "resource";
    case Step::kPowerTest: return "power";
    case Step::kProceed: return "PROCEED";
    case Step::kRejected: return "rejected";
  }
  return "?";
}
}  // namespace

std::string MethodologyOutcome::render_trace() const {
  std::ostringstream os;
  for (const auto& e : trace) {
    os << '[' << e.candidate_index << "] " << e.candidate_name << ": "
       << step_name(e.step);
    if (e.step != Step::kProceed && e.step != Step::kRejected)
      os << (e.passed ? " PASS" : " FAIL");
    if (!e.detail.empty()) os << " — " << e.detail;
    os << '\n';
  }
  return os.str();
}

MethodologyOutcome run_methodology(
    const std::vector<DesignCandidate>& candidates, const Requirements& req,
    const rcsim::Device& device) {
  if (candidates.empty())
    throw std::invalid_argument("run_methodology: no candidates");
  if (req.min_speedup <= 0.0)
    throw std::invalid_argument("run_methodology: min_speedup <= 0");

  MethodologyOutcome out;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const auto& cand = candidates[i];
    const std::string& name = cand.inputs.name;

    // --- Throughput test -------------------------------------------------
    const ThroughputPrediction pred =
        predict(cand.inputs, cand.decision_clock_hz);
    out.predictions.push_back(pred);
    const double speedup =
        req.double_buffered ? pred.speedup_db : pred.speedup_sb;
    const bool tp_ok = speedup >= req.min_speedup;
    out.trace.push_back(
        {i, name, Step::kThroughputTest, tp_ok,
         "predicted speedup " + util::fixed(speedup, 1) + " vs required " +
             util::fixed(req.min_speedup, 1)});
    if (!tp_ok) {
      out.last_reject = RejectReason::kInsufficientThroughput;
      out.trace.push_back({i, name, Step::kRejected, false,
                           "insufficient comm. or comp. throughput"});
      continue;
    }

    // --- Precision test ---------------------------------------------------
    if (req.precision) {
      if (!cand.precision_kernel)
        throw std::invalid_argument(
            "run_methodology: precision requested but candidate '" + name +
            "' has no precision kernel");
      const PrecisionResult pr = run_precision_test(
          cand.precision_kernel, cand.precision_reference, *req.precision);
      out.trace.push_back(
          {i, name, Step::kPrecisionTest, pr.satisfied,
           pr.satisfied
               ? "minimum precision " + pr.choice->format.to_string() +
                     " (max err " +
                     util::fixed(pr.choice->report.max_error_percent, 2) + "%)"
               : "no format within tolerance"});
      if (!pr.satisfied) {
        out.last_reject = RejectReason::kUnrealizablePrecision;
        out.trace.push_back({i, name, Step::kRejected, false,
                             "unrealizable precision requirement"});
        continue;
      }
    }

    // --- Resource test ----------------------------------------------------
    const ResourceTestResult rr =
        run_resource_test(cand.resources, device, req.practical_fill_limit);
    out.trace.push_back(
        {i, name, Step::kResourceTest, rr.feasible,
         "binding resource " + rr.utilization.binding_resource() + " at " +
             util::percent(rr.utilization.max_fraction())});
    if (!rr.feasible) {
      out.last_reject = RejectReason::kInsufficientResources;
      out.trace.push_back(
          {i, name, Step::kRejected, false, "insufficient resources"});
      continue;
    }

    // --- Power test (optional extension gate) ------------------------------
    if (req.min_energy_ratio) {
      const PowerEstimate pe =
          estimate_power(rr.usage, pred, cand.inputs.software.tsoft_sec,
                         req.power_model, req.host_power_model);
      const bool power_ok = pe.energy_ratio >= *req.min_energy_ratio;
      out.trace.push_back(
          {i, name, Step::kPowerTest, power_ok,
           "energy ratio " + util::fixed(pe.energy_ratio, 1) +
               "x vs required " + util::fixed(*req.min_energy_ratio, 1) +
               "x (" + util::fixed(pe.fpga_watts, 1) + " W FPGA)"});
      if (!power_ok) {
        out.last_reject = RejectReason::kInsufficientEnergySavings;
        out.trace.push_back({i, name, Step::kRejected, false,
                             "insufficient energy savings"});
        continue;
      }
    }

    out.proceed = true;
    out.accepted_index = i;
    out.trace.push_back({i, name, Step::kProceed, true,
                         "build in HDL/HLL, verify on HW platform"});
    return out;
  }
  return out;  // all permutations exhausted without a satisfactory solution
}

}  // namespace rat::core
