#include "core/methodology.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "core/evaluation.hpp"
#include "store/checkpoint.hpp"
#include "store/checksum.hpp"
#include "util/parallel_for.hpp"

namespace rat::core {

namespace {
const char* step_name(Step s) {
  switch (s) {
    case Step::kThroughputTest: return "throughput";
    case Step::kPrecisionTest: return "precision";
    case Step::kResourceTest: return "resource";
    case Step::kPowerTest: return "power";
    case Step::kProceed: return "PROCEED";
    case Step::kRejected: return "rejected";
  }
  return "?";
}
}  // namespace

std::string MethodologyOutcome::render_trace() const {
  std::ostringstream os;
  for (const auto& e : trace) {
    os << '[' << e.candidate_index << "] " << e.candidate_name << ": "
       << step_name(e.step);
    if (e.step != Step::kProceed && e.step != Step::kRejected)
      os << (e.passed ? " PASS" : " FAIL");
    if (!e.detail.empty()) os << " — " << e.detail;
    os << '\n';
  }
  return os.str();
}

namespace {

/// Replay a recorded evaluation, or evaluate and record a fresh one.
/// @p window_index addresses the candidate inside the pre-evaluated
/// window batch.
CandidateEvaluation evaluate_or_restore(std::size_t i,
                                        const DesignCandidate& cand,
                                        const Requirements& req,
                                        const rcsim::Device& device,
                                        store::CampaignCheckpoint* checkpoint,
                                        bool* restored,
                                        const WindowPredictions& window,
                                        std::size_t window_index) {
  std::uint64_t fp = 0;
  if (checkpoint != nullptr) {
    fp = candidate_fingerprint(cand);
    if (const std::string* payload = checkpoint->restored_payload(i, fp)) {
      if (restored != nullptr) *restored = true;
      return decode_evaluation(*payload);
    }
  }
  // Fresh evaluation: surface the validation error predict() would have
  // thrown for this candidate, at the same point in the run.
  if (window.errors[window_index])
    std::rethrow_exception(window.errors[window_index]);
  CandidateEvaluation ev = evaluate_candidate(
      i, cand, req, device, window.batch.prediction(window_index));
  if (checkpoint != nullptr) checkpoint->record(i, fp, encode_evaluation(ev));
  return ev;
}

}  // namespace

std::uint64_t candidate_fingerprint(const DesignCandidate& cand) {
  store::Fnv1a fp;
  fp.add_string("rat.candidate.v1");
  const RatInputs& in = cand.inputs;
  fp.add_string(in.name);
  fp.add_u64(in.dataset.elements_in);
  fp.add_u64(in.dataset.elements_out);
  fp.add_double(in.dataset.bytes_per_element);
  fp.add_double(in.comm.ideal_bw_bytes_per_sec);
  fp.add_double(in.comm.alpha_write);
  fp.add_double(in.comm.alpha_read);
  fp.add_double(in.comp.ops_per_element);
  fp.add_double(in.comp.throughput_ops_per_cycle);
  fp.add_u64(in.comp.fclock_hz.size());
  for (double f : in.comp.fclock_hz) fp.add_double(f);
  fp.add_double(in.software.tsoft_sec);
  fp.add_u64(in.software.n_iterations);
  fp.add_double(cand.decision_clock_hz);
  fp.add_u64(cand.resources.size());
  for (const ResourceItem& r : cand.resources) {
    fp.add_string(r.name);
    fp.add_u64(static_cast<std::uint64_t>(r.multiplier_count));
    fp.add_u64(static_cast<std::uint64_t>(r.multiplier_bits));
    fp.add_u64(static_cast<std::uint64_t>(r.buffer_bytes));
    fp.add_u64(static_cast<std::uint64_t>(r.logic_elements));
    fp.add_u64(static_cast<std::uint64_t>(r.instances));
  }
  fp.add_u64(cand.precision_reference.size());
  for (double v : cand.precision_reference) fp.add_double(v);
  // The kernel itself is opaque; its presence at least distinguishes
  // precision-tested candidates from throughput-only ones.
  fp.add_u64(cand.precision_kernel ? 1 : 0);
  return fp.value();
}

std::uint64_t requirements_fingerprint(const Requirements& req,
                                       const rcsim::Device& device) {
  store::Fnv1a fp;
  fp.add_string("rat.requirements.v1");
  fp.add_double(req.min_speedup);
  fp.add_u64(req.double_buffered ? 1 : 0);
  fp.add_u64(req.precision ? 1 : 0);
  if (req.precision) {
    fp.add_double(req.precision->max_error_percent);
    fp.add_u64(static_cast<std::uint64_t>(req.precision->min_total_bits));
    fp.add_u64(static_cast<std::uint64_t>(req.precision->max_total_bits));
    fp.add_u64(static_cast<std::uint64_t>(req.precision->int_bits));
    // kernel_thread_safe affects scheduling only, never results.
  }
  fp.add_double(req.practical_fill_limit);
  fp.add_u64(req.min_energy_ratio ? 1 : 0);
  if (req.min_energy_ratio) fp.add_double(*req.min_energy_ratio);
  fp.add_double(req.power_model.static_watts);
  fp.add_double(req.power_model.watts_per_dsp_100mhz);
  fp.add_double(req.power_model.watts_per_bram_100mhz);
  fp.add_double(req.power_model.watts_per_klogic_100mhz);
  fp.add_double(req.power_model.io_watts);
  fp.add_double(req.host_power_model.busy_watts);
  fp.add_double(req.host_power_model.idle_watts);
  fp.add_string(device.name);
  fp.add_u64(static_cast<std::uint64_t>(device.family));
  fp.add_u64(static_cast<std::uint64_t>(device.inventory.dsp));
  fp.add_u64(static_cast<std::uint64_t>(device.inventory.bram));
  fp.add_u64(static_cast<std::uint64_t>(device.inventory.logic));
  return fp.value();
}

MethodologyOutcome run_methodology(
    const std::vector<DesignCandidate>& candidates, const Requirements& req,
    const rcsim::Device& device, std::size_t n_threads,
    store::CampaignCheckpoint* checkpoint, std::size_t* n_restored) {
  if (candidates.empty())
    throw std::invalid_argument("run_methodology: no candidates");
  if (req.min_speedup <= 0.0)
    throw std::invalid_argument("run_methodology: min_speedup <= 0");
  if (n_restored != nullptr) *n_restored = 0;

  MethodologyOutcome out;
  // Append one candidate's results in enumeration order; true = accepted,
  // which ends the run exactly like the serial early exit.
  auto absorb = [&out](std::size_t i, CandidateEvaluation&& ev) {
    for (auto& e : ev.trace) out.trace.push_back(std::move(e));
    out.predictions.push_back(ev.prediction);
    if (ev.passed) {
      out.proceed = true;
      out.accepted_index = i;
      return true;
    }
    out.last_reject = ev.reject;
    return false;
  };

  const std::size_t threads =
      std::min(util::resolve_thread_count(n_threads), candidates.size());
  // Serial or parallel, candidates are processed in enumeration-order
  // windows whose throughput predictions are computed up front by one SoA
  // batch sweep (validation deferred per candidate — see
  // WindowPredictions); the precision/resource/power gates then run per
  // candidate, in parallel when a pool is available. Wasted work past an
  // accepted design is bounded by one window, and absorbing in order
  // keeps the trace byte-identical to the serial run.
  WindowPredictions window_preds;
  if (threads <= 1) {
    constexpr std::size_t kSerialWindow = 256;
    for (std::size_t start = 0; start < candidates.size();
         start += kSerialWindow) {
      const std::size_t count =
          std::min(kSerialWindow, candidates.size() - start);
      window_preds.fill(candidates, start, count);
      for (std::size_t k = 0; k < count; ++k) {
        bool restored = false;
        CandidateEvaluation ev =
            evaluate_or_restore(start + k, candidates[start + k], req,
                                device, checkpoint, &restored,
                                window_preds, k);
        if (restored && n_restored != nullptr) ++*n_restored;
        if (absorb(start + k, std::move(ev))) return out;
      }
    }
    return out;  // all permutations exhausted without a satisfactory solution
  }

  const std::size_t window = threads * 4;
  for (std::size_t start = 0; start < candidates.size(); start += window) {
    const std::size_t count = std::min(window, candidates.size() - start);
    window_preds.fill(candidates, start, count);
    // One flag per item, each written by exactly one worker — no race.
    std::vector<unsigned char> restored(count, 0);
    auto evals = util::parallel_map(
        count,
        [&](std::size_t k) {
          bool r = false;
          CandidateEvaluation ev =
              evaluate_or_restore(start + k, candidates[start + k], req,
                                  device, checkpoint, &r, window_preds, k);
          restored[k] = r ? 1 : 0;
          return ev;
        },
        threads);
    for (std::size_t k = 0; k < count; ++k) {
      if (restored[k] && n_restored != nullptr) ++*n_restored;
      if (absorb(start + k, std::move(evals[k]))) return out;
    }
  }
  return out;  // all permutations exhausted without a satisfactory solution
}

}  // namespace rat::core
