#include "core/methodology.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/format.hpp"
#include "util/parallel_for.hpp"

namespace rat::core {

namespace {
const char* step_name(Step s) {
  switch (s) {
    case Step::kThroughputTest: return "throughput";
    case Step::kPrecisionTest: return "precision";
    case Step::kResourceTest: return "resource";
    case Step::kPowerTest: return "power";
    case Step::kProceed: return "PROCEED";
    case Step::kRejected: return "rejected";
  }
  return "?";
}
}  // namespace

std::string MethodologyOutcome::render_trace() const {
  std::ostringstream os;
  for (const auto& e : trace) {
    os << '[' << e.candidate_index << "] " << e.candidate_name << ": "
       << step_name(e.step);
    if (e.step != Step::kProceed && e.step != Step::kRejected)
      os << (e.passed ? " PASS" : " FAIL");
    if (!e.detail.empty()) os << " — " << e.detail;
    os << '\n';
  }
  return os.str();
}

namespace {

/// Everything one candidate contributes to the outcome, computed without
/// touching shared state so candidates can be evaluated on any thread.
struct CandidateEvaluation {
  std::vector<TraceEntry> trace;
  ThroughputPrediction prediction;
  bool passed = false;
  RejectReason reject = RejectReason::kNone;
};

CandidateEvaluation evaluate_candidate(std::size_t i,
                                       const DesignCandidate& cand,
                                       const Requirements& req,
                                       const rcsim::Device& device) {
  CandidateEvaluation ev;
  const std::string& name = cand.inputs.name;

  // --- Throughput test -------------------------------------------------
  const ThroughputPrediction pred =
      predict(cand.inputs, cand.decision_clock_hz);
  ev.prediction = pred;
  const double speedup =
      req.double_buffered ? pred.speedup_db : pred.speedup_sb;
  const bool tp_ok = speedup >= req.min_speedup;
  ev.trace.push_back(
      {i, name, Step::kThroughputTest, tp_ok,
       "predicted speedup " + util::fixed(speedup, 1) + " vs required " +
           util::fixed(req.min_speedup, 1)});
  if (!tp_ok) {
    ev.reject = RejectReason::kInsufficientThroughput;
    ev.trace.push_back({i, name, Step::kRejected, false,
                        "insufficient comm. or comp. throughput"});
    return ev;
  }

  // --- Precision test ---------------------------------------------------
  if (req.precision) {
    if (!cand.precision_kernel)
      throw std::invalid_argument(
          "run_methodology: precision requested but candidate '" + name +
          "' has no precision kernel");
    const PrecisionResult pr = run_precision_test(
        cand.precision_kernel, cand.precision_reference, *req.precision);
    ev.trace.push_back(
        {i, name, Step::kPrecisionTest, pr.satisfied,
         pr.satisfied
             ? "minimum precision " + pr.choice->format.to_string() +
                   " (max err " +
                   util::fixed(pr.choice->report.max_error_percent, 2) + "%)"
             : "no format within tolerance"});
    if (!pr.satisfied) {
      ev.reject = RejectReason::kUnrealizablePrecision;
      ev.trace.push_back({i, name, Step::kRejected, false,
                          "unrealizable precision requirement"});
      return ev;
    }
  }

  // --- Resource test ----------------------------------------------------
  const ResourceTestResult rr =
      run_resource_test(cand.resources, device, req.practical_fill_limit);
  ev.trace.push_back(
      {i, name, Step::kResourceTest, rr.feasible,
       "binding resource " + rr.utilization.binding_resource() + " at " +
           util::percent(rr.utilization.max_fraction())});
  if (!rr.feasible) {
    ev.reject = RejectReason::kInsufficientResources;
    ev.trace.push_back(
        {i, name, Step::kRejected, false, "insufficient resources"});
    return ev;
  }

  // --- Power test (optional extension gate) ------------------------------
  if (req.min_energy_ratio) {
    const PowerEstimate pe =
        estimate_power(rr.usage, pred, cand.inputs.software.tsoft_sec,
                       req.power_model, req.host_power_model);
    const bool power_ok = pe.energy_ratio >= *req.min_energy_ratio;
    ev.trace.push_back(
        {i, name, Step::kPowerTest, power_ok,
         "energy ratio " + util::fixed(pe.energy_ratio, 1) +
             "x vs required " + util::fixed(*req.min_energy_ratio, 1) +
             "x (" + util::fixed(pe.fpga_watts, 1) + " W FPGA)"});
    if (!power_ok) {
      ev.reject = RejectReason::kInsufficientEnergySavings;
      ev.trace.push_back({i, name, Step::kRejected, false,
                          "insufficient energy savings"});
      return ev;
    }
  }

  ev.passed = true;
  ev.trace.push_back({i, name, Step::kProceed, true,
                      "build in HDL/HLL, verify on HW platform"});
  return ev;
}

}  // namespace

MethodologyOutcome run_methodology(
    const std::vector<DesignCandidate>& candidates, const Requirements& req,
    const rcsim::Device& device, std::size_t n_threads) {
  if (candidates.empty())
    throw std::invalid_argument("run_methodology: no candidates");
  if (req.min_speedup <= 0.0)
    throw std::invalid_argument("run_methodology: min_speedup <= 0");

  MethodologyOutcome out;
  // Append one candidate's results in enumeration order; true = accepted,
  // which ends the run exactly like the serial early exit.
  auto absorb = [&out](std::size_t i, CandidateEvaluation&& ev) {
    for (auto& e : ev.trace) out.trace.push_back(std::move(e));
    out.predictions.push_back(ev.prediction);
    if (ev.passed) {
      out.proceed = true;
      out.accepted_index = i;
      return true;
    }
    out.last_reject = ev.reject;
    return false;
  };

  const std::size_t threads =
      std::min(util::resolve_thread_count(n_threads), candidates.size());
  if (threads <= 1) {
    for (std::size_t i = 0; i < candidates.size(); ++i)
      if (absorb(i, evaluate_candidate(i, candidates[i], req, device)))
        return out;
    return out;  // all permutations exhausted without a satisfactory solution
  }

  // Evaluate in enumeration-order windows: wasted work past an accepted
  // design is bounded by one window, and merging in order keeps the trace
  // byte-identical to the serial run.
  const std::size_t window = threads * 4;
  for (std::size_t start = 0; start < candidates.size(); start += window) {
    const std::size_t count = std::min(window, candidates.size() - start);
    auto evals = util::parallel_map(
        count,
        [&](std::size_t k) {
          return evaluate_candidate(start + k, candidates[start + k], req,
                                    device);
        },
        threads);
    for (std::size_t k = 0; k < count; ++k)
      if (absorb(start + k, std::move(evals[k]))) return out;
  }
  return out;  // all permutations exhausted without a satisfactory solution
}

}  // namespace rat::core
