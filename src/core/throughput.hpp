// The RAT throughput test: Equations (1)-(11) of the paper.
//
// Given a worksheet of inputs, predict per-iteration communication and
// computation time, single- and double-buffered RC execution time, speedup
// against the software baseline, and comm/comp utilizations.
#pragma once

#include <vector>

#include "core/parameters.hpp"

namespace rat::core {

/// Buffering discipline of the modelled design: single buffered (Eq. 5,
/// transfers and computation serialized) or double buffered (Eq. 6,
/// overlapped). Shared by the inverse solvers and the validation scorer.
enum class BufferingMode { kSingle, kDouble };

/// All derived quantities for one candidate clock frequency.
struct ThroughputPrediction {
  double fclock_hz = 0.0;

  // Per-iteration terms.
  double t_write_sec = 0.0;  ///< Eq. (3): input transfer, host->FPGA
  double t_read_sec = 0.0;   ///< Eq. (2): output transfer, FPGA->host
  double t_comm_sec = 0.0;   ///< Eq. (1)
  double t_comp_sec = 0.0;   ///< Eq. (4)

  // Whole-application execution times.
  double t_rc_sb_sec = 0.0;  ///< Eq. (5), single buffered
  double t_rc_db_sec = 0.0;  ///< Eq. (6), double buffered

  // Eq. (7) for each buffering mode.
  double speedup_sb = 0.0;
  double speedup_db = 0.0;

  // Eqs. (8)-(11).
  double util_comp_sb = 0.0;
  double util_comm_sb = 0.0;
  double util_comp_db = 0.0;
  double util_comm_db = 0.0;

  /// True when communication dominates (tcomm > tcomp) — the regime where
  /// double buffering hides computation rather than communication.
  bool communication_bound() const { return t_comm_sec > t_comp_sec; }
};

/// Evaluate the model at one clock frequency. @p inputs is validated.
ThroughputPrediction predict(const RatInputs& inputs, double fclock_hz);

/// Pre-validated fast path: identical arithmetic to predict() (they share
/// the Eqs. 1-11 kernel in throughput_kernel.hpp, so results are
/// bit-identical) but skips the worksheet validation and clock check. The
/// caller guarantees inputs.validate() holds and fclock_hz > 0; batch,
/// Monte-Carlo and sweep loops validate once per point set and then stay
/// on this path.
ThroughputPrediction predict_unchecked(const RatInputs& inputs,
                                       double fclock_hz) noexcept;

/// Evaluate at every candidate clock in the worksheet (Tables 3/6/9 list
/// one prediction column per clock). Validates once, not once per clock.
std::vector<ThroughputPrediction> predict_all(const RatInputs& inputs);

}  // namespace rat::core
