#include "core/report.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/units.hpp"
#include "core/worksheet.hpp"
#include "util/format.hpp"

namespace rat::core {

void Report::finalize() {
  inputs.validate();
  predictions = predict_all(inputs);
  validations.clear();
  for (const auto& m : measurements) {
    // Pair with the closest-clock prediction (measurements may use a clock
    // outside the candidate list, e.g. MD measured at 100 of 75/100/150).
    const ThroughputPrediction* best = nullptr;
    for (const auto& p : predictions) {
      if (!best || std::fabs(p.fclock_hz - m.fclock_hz) <
                       std::fabs(best->fclock_hz - m.fclock_hz)) {
        best = &p;
      }
    }
    if (!best) throw std::logic_error("Report::finalize: no predictions");
    validations.push_back(validate(*best, m));
  }
}

std::string Report::to_markdown() const {
  std::ostringstream os;
  os << "# RAT analysis: " << inputs.name << "\n\n";
  os << "## Input parameters\n\n" << inputs.to_table().to_markdown() << '\n';
  os << "## Performance (single buffered)\n\n"
     << performance_table(predictions, measurements,
                          WorksheetMode::kSingleBuffered)
            .to_markdown()
     << '\n';
  os << "## Performance (double buffered)\n\n"
     << performance_table(predictions, measurements,
                          WorksheetMode::kDoubleBuffered)
            .to_markdown()
     << '\n';
  for (std::size_t i = 0; i < validations.size(); ++i) {
    os << "## Validation of measurement " << i + 1 << " ("
       << util::fixed(to_mhz(measurements[i].fclock_hz), 0) << " MHz)\n\n"
       << validations[i].to_table().to_markdown() << '\n';
  }
  if (resources && device) {
    os << "## Resource test (" << device->name << ")\n\n"
       << resources->to_table(*device).to_markdown() << '\n'
       << "Feasible: " << (resources->feasible ? "yes" : "**NO**")
       << ", binding resource: " << resources->utilization.binding_resource()
       << "\n\n";
    if (!resources->breakdown.empty()) {
      util::Table t({"component", "dsp", "bram", "logic"});
      for (const auto& c : resources->breakdown) {
        t.add_row({c.name, std::to_string(c.usage.dsp),
                   std::to_string(c.usage.bram),
                   std::to_string(c.usage.logic)});
      }
      os << "### Breakdown\n\n" << t.to_markdown() << '\n';
    }
  }
  if (methodology) {
    os << "## Methodology trace\n\n```\n"
       << methodology->render_trace() << "```\n\n"
       << "Outcome: "
       << (methodology->proceed ? "PROCEED" : "no satisfactory design")
       << '\n';
  }
  return os.str();
}

std::string predictions_csv(const std::vector<ThroughputPrediction>& preds) {
  util::Table t({"fclock_mhz", "t_write_sec", "t_read_sec", "t_comm_sec",
                 "t_comp_sec", "t_rc_sb_sec", "t_rc_db_sec", "speedup_sb",
                 "speedup_db", "util_comm_sb", "util_comp_sb",
                 "util_comm_db", "util_comp_db"});
  for (const auto& p : preds) {
    t.add_row({util::fixed(to_mhz(p.fclock_hz), 3), util::sci(p.t_write_sec, 6),
               util::sci(p.t_read_sec, 6), util::sci(p.t_comm_sec, 6),
               util::sci(p.t_comp_sec, 6), util::sci(p.t_rc_sb_sec, 6),
               util::sci(p.t_rc_db_sec, 6), util::fixed(p.speedup_sb, 4),
               util::fixed(p.speedup_db, 4), util::fixed(p.util_comm_sb, 6),
               util::fixed(p.util_comp_sb, 6), util::fixed(p.util_comm_db, 6),
               util::fixed(p.util_comp_db, 6)});
  }
  return t.to_csv();
}

std::filesystem::path Report::write(const std::filesystem::path& directory,
                                    const std::string& stem) const {
  if (stem.empty()) throw std::invalid_argument("Report::write: empty stem");
  std::filesystem::create_directories(directory);
  const auto md_path = directory / (stem + ".md");
  {
    std::ofstream f(md_path);
    if (!f) throw std::runtime_error("Report::write: cannot open " +
                                     md_path.string());
    f << to_markdown();
  }
  {
    std::ofstream f(directory / (stem + "_predictions.csv"));
    f << predictions_csv(predictions);
  }
  if (!validations.empty()) {
    util::Table t({"fclock_mhz", "comm_error_pct", "comp_error_pct",
                   "t_rc_error_pct", "speedup_error_pct", "within_order"});
    for (std::size_t i = 0; i < validations.size(); ++i) {
      const auto& v = validations[i];
      t.add_row({util::fixed(to_mhz(measurements[i].fclock_hz), 1),
                 util::fixed(v.comm_error_percent, 2),
                 util::fixed(v.comp_error_percent, 2),
                 util::fixed(v.t_rc_error_percent, 2),
                 util::fixed(v.speedup_error_percent, 2),
                 v.within_order_of_magnitude() ? "1" : "0"});
    }
    std::ofstream f(directory / (stem + "_validation.csv"));
    f << t.to_csv();
  }
  return md_path;
}

}  // namespace rat::core
