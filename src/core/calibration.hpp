// Interconnect model calibration from microbenchmark samples.
//
// The paper prescribes deriving alpha from measured transfers; this module
// closes the loop in the other direction: given (bytes, seconds) samples
// from a real or simulated bus, fit the latency+bandwidth model
//
//     time = fixed_overhead + bytes / sustained_bw
//
// by ordinary least squares, with a fit-quality report. A calibrated
// LinkDirection can then drive the simulator for platforms we have only
// measurements of — and the fitted curve supplies alpha at *every* size,
// fixing exactly the single-probe-size fragility that bit the paper's 1-D
// PDF prediction (§4.3).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "rcsim/interconnect.hpp"
#include "rcsim/microbench.hpp"

namespace rat::core {

/// One calibration observation.
struct TransferSample {
  std::size_t bytes = 0;
  double time_sec = 0.0;
};

/// Least-squares fit result for one direction.
struct LinkFit {
  double fixed_overhead_sec = 0.0;
  double sustained_bw = 0.0;  ///< bytes/sec
  double r_squared = 0.0;     ///< coefficient of determination
  /// Largest relative residual |model - sample| / sample.
  double max_relative_residual = 0.0;

  rcsim::LinkDirection to_direction(double rearm_sec = 0.0) const;

  /// Model-implied alpha at a size, against a documented bandwidth.
  double alpha_at(std::size_t bytes, double documented_bw) const;
};

/// Fit the affine model to samples. Requires >= 2 distinct sizes and
/// positive times; throws std::invalid_argument otherwise (including when
/// the fitted bandwidth or overhead comes out non-positive, which means
/// the data cannot be described by this model).
LinkFit fit_link_direction(std::span<const TransferSample> samples);

/// Convenience: run a microbenchmark sweep on @p link and fit both
/// directions, returning {host->FPGA fit, FPGA->host fit}.
std::pair<LinkFit, LinkFit> calibrate_from_microbench(
    const rcsim::Link& link, const std::vector<std::size_t>& sizes,
    int repeats = 16, std::uint64_t seed = 0x5eed);

}  // namespace rat::core
