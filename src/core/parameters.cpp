#include "core/parameters.hpp"

#include <charconv>
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "core/units.hpp"
#include "io/diagnostics.hpp"
#include "util/format.hpp"

namespace rat::core {

namespace {

void require(bool ok, const std::string& what) {
  if (!ok) throw std::invalid_argument("RatInputs: " + what);
}

/// Strict, locale-independent number parsing for one worksheet value
/// token. std::from_chars never consults the global locale (std::stod
/// does, so "75.5" failed under comma-decimal locales) and reports
/// overflow as a result code instead of letting std::out_of_range escape
/// without the key name. All failures become ParseError carrying the
/// origin, position and offending key.
double parse_double_token(std::string_view token, const std::string& origin,
                          std::size_t line, std::size_t column,
                          const std::string& key, ParseErrorCode code) {
  std::string_view t = token;
  if (!t.empty() && t.front() == '+') t.remove_prefix(1);  // from_chars: no '+'
  if (t.empty())
    throw ParseError({origin, line, column, code, key,
                      "empty value, expected a number"});
  double x = 0.0;
  const auto r = std::from_chars(t.data(), t.data() + t.size(), x);
  if (r.ec == std::errc::invalid_argument)
    throw ParseError({origin, line, column, code, key,
                      "not a number: '" + std::string(token) + "'"});
  if (r.ec == std::errc::result_out_of_range)
    throw ParseError({origin, line, column, code, key,
                      "number out of range: '" + std::string(token) + "'"});
  if (r.ptr != t.data() + t.size())
    throw ParseError({origin, line, column, code, key,
                      "trailing characters after number: '" +
                          std::string(token) + "'"});
  if (!std::isfinite(x))
    throw ParseError({origin, line, column, code, key,
                      "non-finite value: '" + std::string(token) + "'"});
  return x;
}

std::size_t parse_count_token(std::string_view token,
                              const std::string& origin, std::size_t line,
                              std::size_t column, const std::string& key) {
  const double x = parse_double_token(token, origin, line, column, key,
                                      ParseErrorCode::kBadCount);
  // 2^53: largest range where every integer is exact in a double.
  if (x < 0.0 || x != std::floor(x) || x > 9007199254740992.0)
    throw ParseError({origin, line, column, ParseErrorCode::kBadCount, key,
                      "expected a non-negative integer, got '" +
                          std::string(token) + "'"});
  return static_cast<std::size_t>(x);
}

}  // namespace

void RatInputs::validate() const {
  require(!name.empty(), "name is empty");
  require(dataset.elements_in > 0, "elements_in must be positive");
  // elements_out == 0 is legal: some designs retain all results on-chip
  // until a final drain that is modelled separately.
  require(dataset.bytes_per_element > 0.0, "bytes_per_element must be > 0");
  require(comm.ideal_bw_bytes_per_sec > 0.0, "ideal bandwidth must be > 0");
  require(comm.alpha_write > 0.0 && comm.alpha_write <= 1.0,
          "alpha_write outside (0,1]");
  require(comm.alpha_read > 0.0 && comm.alpha_read <= 1.0,
          "alpha_read outside (0,1]");
  require(comp.ops_per_element > 0.0, "ops_per_element must be > 0");
  require(comp.throughput_ops_per_cycle > 0.0,
          "throughput_proc must be > 0");
  require(!comp.fclock_hz.empty(), "no candidate clock frequencies");
  for (double f : comp.fclock_hz)
    require(f > 0.0, "non-positive clock frequency");
  require(software.tsoft_sec > 0.0, "tsoft must be > 0");
  require(software.n_iterations > 0, "Niter must be positive");
}

util::Table RatInputs::to_table() const {
  util::Table t({"Parameter", "Value"});
  t.add_row({"Dataset Parameters", ""});
  t.add_row({"  Nelements, input (elements)",
             std::to_string(dataset.elements_in)});
  t.add_row({"  Nelements, output (elements)",
             std::to_string(dataset.elements_out)});
  t.add_row({"  Nbytes/element (bytes/element)",
             util::fixed(dataset.bytes_per_element, 0)});
  t.add_row({"Communication Parameters", ""});
  t.add_row({"  throughput_ideal (MB/s)",
             util::fixed(comm.ideal_bw_bytes_per_sec / 1e6, 0)});
  t.add_row({"  alpha_write (0 < a <= 1)", util::fixed(comm.alpha_write, 2)});
  t.add_row({"  alpha_read (0 < a <= 1)", util::fixed(comm.alpha_read, 2)});
  t.add_row({"Computation Parameters", ""});
  t.add_row({"  Nops/element (ops/element)",
             util::fixed(comp.ops_per_element, 0)});
  t.add_row({"  throughput_proc (ops/cycle)",
             util::fixed(comp.throughput_ops_per_cycle, 0)});
  std::string clocks;
  for (std::size_t i = 0; i < comp.fclock_hz.size(); ++i) {
    if (i) clocks += "/";
    clocks += util::fixed(to_mhz(comp.fclock_hz[i]), 0);
  }
  t.add_row({"  fclock (MHz)", clocks});
  t.add_row({"Software Parameters", ""});
  t.add_row({"  tsoft (sec)", util::fixed(software.tsoft_sec, 3)});
  t.add_row({"  Niter (iterations)",
             std::to_string(software.n_iterations)});
  return t;
}

std::string RatInputs::serialize() const {
  std::ostringstream os;
  os.precision(17);
  os << "name = " << name << '\n';
  os << "elements_in = " << dataset.elements_in << '\n';
  os << "elements_out = " << dataset.elements_out << '\n';
  os << "bytes_per_element = " << dataset.bytes_per_element << '\n';
  os << "ideal_bw_bytes_per_sec = " << comm.ideal_bw_bytes_per_sec << '\n';
  os << "alpha_write = " << comm.alpha_write << '\n';
  os << "alpha_read = " << comm.alpha_read << '\n';
  os << "ops_per_element = " << comp.ops_per_element << '\n';
  os << "throughput_ops_per_cycle = " << comp.throughput_ops_per_cycle
     << '\n';
  os << "fclock_hz =";
  for (double f : comp.fclock_hz) os << ' ' << f;
  os << '\n';
  os << "tsoft_sec = " << software.tsoft_sec << '\n';
  os << "n_iterations = " << software.n_iterations << '\n';
  return os.str();
}

RatInputs RatInputs::parse(const std::string& text) {
  return parse(text, "<string>");
}

RatInputs RatInputs::parse(const std::string& text,
                           const std::string& origin) {
  RatInputs in;
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  std::set<std::string> seen;
  bool saw_name = false;
  while (std::getline(is, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF files
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos)
      throw ParseError({origin, line_no, first + 1,
                        ParseErrorCode::kMissingEquals, "",
                        "missing '=' in: " + line});
    auto trim = [](std::string s) {
      const auto b = s.find_first_not_of(" \t");
      const auto e = s.find_last_not_of(" \t");
      return b == std::string::npos ? std::string() : s.substr(b, e - b + 1);
    };
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    const std::size_t key_col = first + 1;
    // Where the value starts in the raw line (1-based), for diagnostics.
    std::size_t value_begin = line.find_first_not_of(" \t", eq + 1);
    if (value_begin == std::string::npos) value_begin = line.size();
    const std::size_t value_col = value_begin + 1;
    if (key.empty())
      throw ParseError({origin, line_no, key_col, ParseErrorCode::kUnknownKey,
                        "", "empty key before '='"});
    if (!seen.insert(key).second)
      throw ParseError({origin, line_no, key_col,
                        ParseErrorCode::kDuplicateKey, key,
                        "duplicate key (appears more than once)"});
    auto as_double = [&] {
      return parse_double_token(value, origin, line_no, value_col, key,
                                ParseErrorCode::kBadNumber);
    };
    auto as_size = [&] {
      return parse_count_token(value, origin, line_no, value_col, key);
    };
    if (key == "name") {
      in.name = value;
      saw_name = true;
    } else if (key == "elements_in") {
      in.dataset.elements_in = as_size();
    } else if (key == "elements_out") {
      in.dataset.elements_out = as_size();
    } else if (key == "bytes_per_element") {
      in.dataset.bytes_per_element = as_double();
    } else if (key == "ideal_bw_bytes_per_sec") {
      in.comm.ideal_bw_bytes_per_sec = as_double();
    } else if (key == "alpha_write") {
      in.comm.alpha_write = as_double();
    } else if (key == "alpha_read") {
      in.comm.alpha_read = as_double();
    } else if (key == "ops_per_element") {
      in.comp.ops_per_element = as_double();
    } else if (key == "throughput_ops_per_cycle") {
      in.comp.throughput_ops_per_cycle = as_double();
    } else if (key == "fclock_hz") {
      // Token-wise over the raw line so a malformed entry is rejected
      // here, at its exact column, instead of being silently dropped
      // (`75e6 oops` used to parse as one clock) or surfacing later as a
      // confusing empty-list validate() message.
      std::size_t pos = value_begin;
      while (pos < line.size()) {
        const std::size_t tb = line.find_first_not_of(" \t", pos);
        if (tb == std::string::npos) break;
        std::size_t te = line.find_first_of(" \t", tb);
        if (te == std::string::npos) te = line.size();
        in.comp.fclock_hz.push_back(
            parse_double_token(line.substr(tb, te - tb), origin, line_no,
                               tb + 1, key, ParseErrorCode::kBadList));
        pos = te;
      }
      if (in.comp.fclock_hz.empty())
        throw ParseError({origin, line_no, value_col,
                          ParseErrorCode::kBadList, key, "empty clock list"});
    } else if (key == "tsoft_sec") {
      in.software.tsoft_sec = as_double();
    } else if (key == "n_iterations") {
      in.software.n_iterations = as_size();
    } else {
      throw ParseError({origin, line_no, key_col, ParseErrorCode::kUnknownKey,
                        key, "unknown key"});
    }
  }
  if (!saw_name)
    throw ParseError({origin, 0, 0, ParseErrorCode::kMissingName, "name",
                      "missing 'name' key"});
  return in;
}

RatInputs pdf1d_inputs() {
  RatInputs in;
  in.name = "1-D PDF estimation";
  in.dataset = DatasetParams{512, 1, 4.0};
  in.comm = CommunicationParams{mbps(1000.0), 0.37, 0.16};
  in.comp = ComputationParams{768.0, 20.0, {mhz(75), mhz(100), mhz(150)}};
  in.software = SoftwareParams{0.578, 400};
  return in;
}

RatInputs pdf2d_inputs() {
  RatInputs in;
  in.name = "2-D PDF estimation";
  in.dataset = DatasetParams{1024, 65536, 4.0};
  in.comm = CommunicationParams{mbps(1000.0), 0.37, 0.16};
  in.comp = ComputationParams{393216.0, 48.0, {mhz(75), mhz(100), mhz(150)}};
  in.software = SoftwareParams{158.8, 400};
  return in;
}

RatInputs md_inputs() {
  RatInputs in;
  in.name = "Molecular dynamics";
  in.dataset = DatasetParams{16384, 16384, 36.0};
  in.comm = CommunicationParams{mbps(500.0), 0.9, 0.9};
  in.comp = ComputationParams{164000.0, 50.0, {mhz(75), mhz(100), mhz(150)}};
  // tsoft: the printed table cell is corrupt in the source scan; 5.78 s is
  // implied by Table 9 (speedup 10.7 at tRC 5.40E-1, and actual 6.6 at
  // 8.80E-1). Single iteration: the whole dataset resides on the FPGA.
  in.software = SoftwareParams{5.78, 1};
  return in;
}

}  // namespace rat::core
