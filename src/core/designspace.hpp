// Design-space enumeration for the Figure-1 iteration.
//
// The paper applies RAT "iteratively during the design process until a
// suitable version of the algorithm is formulated or all reasonable
// permutations are exhausted" (§3). This module generates those
// permutations systematically: the cartesian product of the axes the
// designer actually turns — parallelism, clock estimate, numeric format —
// materialized as ordered DesignCandidates via a caller-supplied factory,
// cheapest first so the methodology settles on the least resource-hungry
// passing design.
#pragma once

#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "core/methodology.hpp"

namespace rat::core {

/// One point of the design space.
struct DesignPoint {
  std::size_t parallelism = 1;   ///< pipelines / lanes / comparators
  double fclock_hz = 100e6;      ///< conservative achievable clock
  int format_bits = 18;          ///< datapath width (ignore if N/A)

  std::string label() const;
};

/// The axes to sweep. Each axis must be non-empty, sorted ascending and
/// duplicate-free (validate() throws otherwise): duplicates would
/// silently double-evaluate points and skew points_total, and the
/// branch-and-bound explorer's corner bounds (docs/EXPLORATION.md) are
/// only admissible over monotonically ordered axes.
struct DesignAxes {
  std::vector<std::size_t> parallelism = {1, 2, 4, 8};
  std::vector<double> fclock_hz = {100e6, 150e6};
  std::vector<int> format_bits = {18};

  void validate() const;
  /// Number of grid points (the product of the axis lengths). Throws
  /// std::overflow_error instead of silently wrapping when the product
  /// does not fit std::size_t.
  std::size_t size() const;
};

/// Builds a methodology candidate from a design point; return nullopt to
/// skip points the design cannot realize (e.g. indivisible pipelines).
using CandidateFactory =
    std::function<std::optional<DesignCandidate>(const DesignPoint&)>;

/// Enumerate the cartesian product, cheapest first: ordered by
/// parallelism, then clock, then format width (ascending). Points skipped
/// by the factory have their labels appended to @p skipped_labels (in
/// enumeration order) when it is non-null; the returned order is the
/// evaluation order for run_methodology. @p points, when non-null,
/// receives the design point behind each returned candidate (same order,
/// same length) — the explorer uses it to map candidates back onto the
/// axes grid without re-running the factory.
std::vector<DesignCandidate> enumerate_design_space(
    const DesignAxes& axes, const CandidateFactory& factory,
    std::vector<std::string>* skipped_labels = nullptr,
    std::vector<DesignPoint>* points = nullptr);

/// Convenience: enumerate + run the methodology, returning the outcome
/// plus exactly which points the factory skipped — so parallel and serial
/// runs can assert identical coverage.
struct DesignSpaceResult {
  MethodologyOutcome outcome;
  std::size_t points_total = 0;
  std::size_t points_skipped = 0;
  /// Labels of the skipped points, in enumeration order
  /// (size() == points_skipped).
  std::vector<std::string> skipped_labels;
  /// Candidates replayed from the checkpoint instead of evaluated
  /// (0 when no checkpoint was given).
  std::size_t points_restored = 0;
};

/// Checkpoint configuration for a resumable exploration (docs/STORE.md).
/// The campaign identity covers the axes, the requirements and the
/// device, so a checkpoint written for one sweep is rejected
/// (E_STALE_CHECKPOINT) when any of them change.
struct DesignSpaceCheckpoint {
  std::filesystem::path path;
  bool sync_every_append = true;
};

/// @p n_threads > 1 (or 0 = auto) evaluates the enumerated candidates
/// concurrently; results are merged in enumeration order, so the outcome
/// (cheapest passing design, trace, predictions) is byte-identical to the
/// serial run. Factories and precision kernels must then be thread-safe.
///
/// @p checkpoint, when non-null, records every completed candidate in a
/// durable campaign checkpoint; rerunning after a crash replays recorded
/// evaluations (points_restored counts them) and produces a byte-identical
/// DesignSpaceResult. Throws store::StoreError (kStaleCheckpoint /
/// kCorrupt / kIo) when the checkpoint cannot be used.
DesignSpaceResult explore_design_space(
    const DesignAxes& axes, const CandidateFactory& factory,
    const Requirements& requirements, const rcsim::Device& device,
    std::size_t n_threads = 1,
    const DesignSpaceCheckpoint* checkpoint = nullptr);

/// Campaign identity of one exploration: the swept axes plus everything
/// the evaluation depends on (requirements + device). Any change makes an
/// existing checkpoint stale rather than silently mixing two sweeps.
/// Shared by explore_design_space and the pruned explorer so their
/// checkpoints are interchangeable.
std::uint64_t design_space_campaign_fingerprint(const DesignAxes& axes,
                                                const Requirements& req,
                                                const rcsim::Device& device);

}  // namespace rat::core
