// Inverse-model and sensitivity analysis.
//
// For data-dependent algorithms the paper inverts the throughput model:
// "treat throughput_proc as an independent variable and select a desired
// speedup value. Then one can solve for the particular throughput_proc
// required to achieve that desired speedup" (§3.1). The MD case study used
// exactly this (50 ops/cycle for a ~10x goal). This module provides the
// closed-form inverses, one-parameter sweeps, and a tornado analysis that
// ranks which inputs the prediction is most sensitive to.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/parameters.hpp"
#include "core/throughput.hpp"

namespace rat::core {

// BufferingMode (kSingle/kDouble) lives in core/throughput.hpp.

/// Solve Eq. (4)+(5)/(6)+(7) for throughput_proc given a target speedup at
/// one clock. Returns nullopt when the target is unreachable at any
/// computation rate (communication alone already exceeds the time budget).
std::optional<double> solve_throughput_proc(const RatInputs& inputs,
                                            double fclock_hz,
                                            double target_speedup,
                                            BufferingMode mode);

/// Solve for the minimum clock frequency achieving a target speedup at the
/// worksheet's throughput_proc. Returns nullopt when unreachable.
std::optional<double> solve_fclock(const RatInputs& inputs,
                                   double target_speedup, BufferingMode mode);

/// Maximum speedup achievable as computation time -> 0 (communication
/// bound), for the given buffering mode.
double speedup_upper_bound(const RatInputs& inputs, BufferingMode mode);

/// One-parameter sweep: mutate the worksheet with @p set for each value,
/// predict at @p fclock_hz, return one prediction per value. Sweep points
/// are independent and evaluated axis-parallel (@p n_threads 0 = auto,
/// 1 = serial); the result order always matches @p values, so parallel
/// and serial runs are identical. @p set is called on a private copy of
/// the worksheet per point and must be safe to call concurrently (every
/// plain field-assignment setter is).
using ParamSetter = std::function<void(RatInputs&, double)>;
std::vector<ThroughputPrediction> sweep_parameter(
    const RatInputs& inputs, const ParamSetter& set,
    const std::vector<double>& values, double fclock_hz,
    std::size_t n_threads = 0);

/// Tornado analysis: perturb each parameter by +/- @p fraction and record
/// the resulting single-buffered speedup range.
struct TornadoEntry {
  std::string parameter;
  double speedup_low = 0.0;   ///< speedup at the unfavourable perturbation
  double speedup_high = 0.0;  ///< speedup at the favourable perturbation
  double swing() const { return speedup_high - speedup_low; }
};

/// Entries sorted by descending swing (most influential parameter first).
/// Parameters are perturbed axis-parallel; the ranking is deterministic
/// and independent of the thread count.
std::vector<TornadoEntry> tornado(const RatInputs& inputs, double fclock_hz,
                                  double fraction = 0.2,
                                  std::size_t n_threads = 0);

}  // namespace rat::core
