#include "core/precision.hpp"

#include <cmath>
#include <stdexcept>

#include "core/batch.hpp"
#include "util/format.hpp"
#include "util/parallel_for.hpp"

namespace rat::core {

double format_bytes_per_element(const fx::Format& format,
                                double channel_word_bytes) {
  if (channel_word_bytes <= 0.0)
    throw std::invalid_argument("bytes_per_element: bad channel word");
  const double raw_bytes = static_cast<double>(format.total_bits) / 8.0;
  return std::ceil(raw_bytes / channel_word_bytes) * channel_word_bytes;
}

double PrecisionResult::bytes_per_element(double channel_word_bytes) const {
  if (!choice) throw std::logic_error("bytes_per_element: no format chosen");
  return format_bytes_per_element(choice->format, channel_word_bytes);
}

util::Table PrecisionResult::to_table() const {
  util::Table t({"total bits", "format", "max error %", "rmse"});
  for (const auto& c : sweep) {
    t.add_row({std::to_string(c.format.total_bits), c.format.to_string(),
               util::fixed(c.report.max_error_percent, 3),
               util::sci(c.report.rmse)});
  }
  return t;
}

namespace {

/// Parallel twin of fx::sweep_total_bits: same formats, same order, one
/// kernel invocation per width on whatever thread is free. Only reached
/// when the caller marked the kernel thread-safe.
std::vector<fx::PrecisionChoice> sweep_total_bits_parallel(
    const fx::FixedKernel& kernel, std::span<const double> reference,
    const PrecisionRequirements& req) {
  std::vector<fx::Format> formats;
  for (int bits = req.min_total_bits; bits <= req.max_total_bits; ++bits) {
    const fx::Format fmt{bits, bits - 1 - req.int_bits, true};
    if (fmt.frac_bits < 0 || fmt.frac_bits > fmt.total_bits) continue;
    formats.push_back(fmt);
  }
  return util::parallel_map(formats.size(), [&](std::size_t i) {
    return fx::PrecisionChoice{formats[i],
                               fx::compare(reference, kernel(formats[i]))};
  });
}

}  // namespace

PrecisionResult run_precision_test(const fx::FixedKernel& kernel,
                                   std::span<const double> reference,
                                   const PrecisionRequirements& req) {
  if (req.max_error_percent <= 0.0)
    throw std::invalid_argument("run_precision_test: tolerance <= 0");
  PrecisionResult result;
  result.sweep =
      req.kernel_thread_safe
          ? sweep_total_bits_parallel(kernel, reference, req)
          : fx::sweep_total_bits(kernel, reference, req.min_total_bits,
                                 req.max_total_bits, req.int_bits);
  for (const auto& c : result.sweep) {
    if (c.report.within_percent(req.max_error_percent)) {
      result.choice = c;
      result.satisfied = true;
      break;  // sweep is ordered by increasing width: first hit is minimal
    }
  }
  return result;
}

std::vector<QuantizedThroughputPoint> quantized_throughput_sweep(
    const RatInputs& inputs, double fclock_hz,
    const std::vector<fx::PrecisionChoice>& sweep,
    double channel_word_bytes) {
  inputs.validate();
  if (fclock_hz <= 0.0)
    throw std::invalid_argument("quantized_throughput_sweep: fclock <= 0");
  std::vector<QuantizedThroughputPoint> out;
  out.reserve(sweep.size());
  ThroughputBatch batch;
  batch.reserve(sweep.size());
  RatInputs scratch = inputs;
  for (const fx::PrecisionChoice& c : sweep) {
    QuantizedThroughputPoint point;
    point.format = c.format;
    point.bytes_per_element =
        format_bytes_per_element(c.format, channel_word_bytes);
    // Only bytes_per_element varies; the worksheet was validated above
    // and the rounded width is positive, so the unchecked fill is safe.
    scratch.dataset.bytes_per_element = point.bytes_per_element;
    batch.push_back_unchecked(scratch, fclock_hz);
    out.push_back(std::move(point));
  }
  predict_batch(batch);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i].prediction = batch.prediction(i);
  return out;
}

}  // namespace rat::core

