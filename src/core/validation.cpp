#include "core/validation.hpp"

#include <cmath>
#include <stdexcept>

#include "util/format.hpp"
#include "util/stats.hpp"

namespace rat::core {

Measured measured_from_totals(double fclock_hz, double total_comm_sec,
                              double total_comp_sec, double total_sec,
                              std::size_t n_iterations, double tsoft_sec) {
  if (n_iterations == 0)
    throw std::invalid_argument("measured_from_totals: zero iterations");
  if (total_sec <= 0.0)
    throw std::invalid_argument("measured_from_totals: non-positive total");
  if (tsoft_sec <= 0.0)
    throw std::invalid_argument("measured_from_totals: non-positive tsoft");
  Measured m;
  m.fclock_hz = fclock_hz;
  const double n = static_cast<double>(n_iterations);
  m.t_comm_sec = total_comm_sec / n;
  m.t_comp_sec = total_comp_sec / n;
  m.t_rc_sec = total_sec;
  m.speedup = tsoft_sec / total_sec;
  const double sum = total_comm_sec + total_comp_sec;
  if (sum > 0.0) {
    m.util_comm = total_comm_sec / sum;
    m.util_comp = total_comp_sec / sum;
  }
  return m;
}

util::Table ValidationReport::to_table() const {
  // The paper's validation tables report error magnitude; the sign
  // (over- vs under-prediction) stays available in the struct fields.
  util::Table t({"Quantity", "error %", "same order?"});
  auto yn = [](bool b) { return b ? std::string("yes") : std::string("no"); };
  t.add_row({"tcomm", util::fixed(std::fabs(comm_error_percent), 1),
             yn(comm_same_order)});
  t.add_row({"tcomp", util::fixed(std::fabs(comp_error_percent), 1),
             yn(comp_same_order)});
  t.add_row({"tRC", util::fixed(std::fabs(t_rc_error_percent), 1), ""});
  t.add_row({"speedup", util::fixed(std::fabs(speedup_error_percent), 1),
             yn(speedup_same_order)});
  return t;
}

ValidationReport validate(const ThroughputPrediction& predicted,
                          const Measured& actual, BufferingMode mode) {
  const bool db = mode == BufferingMode::kDouble;
  const double predicted_t_rc = db ? predicted.t_rc_db_sec
                                   : predicted.t_rc_sb_sec;
  const double predicted_speedup = db ? predicted.speedup_db
                                      : predicted.speedup_sb;
  ValidationReport r;
  r.comm_error_percent =
      util::percent_error(predicted.t_comm_sec, actual.t_comm_sec);
  r.comp_error_percent =
      util::percent_error(predicted.t_comp_sec, actual.t_comp_sec);
  r.t_rc_error_percent =
      util::percent_error(predicted_t_rc, actual.t_rc_sec);
  r.speedup_error_percent =
      util::percent_error(predicted_speedup, actual.speedup);
  r.comm_same_order =
      util::same_order_of_magnitude(predicted.t_comm_sec, actual.t_comm_sec);
  r.comp_same_order =
      util::same_order_of_magnitude(predicted.t_comp_sec, actual.t_comp_sec);
  r.speedup_same_order =
      util::same_order_of_magnitude(predicted_speedup, actual.speedup);
  return r;
}

}  // namespace rat::core
