#include "core/throughput.hpp"

#include <stdexcept>

#include "core/throughput_kernel.hpp"

namespace rat::core {

ThroughputPrediction predict_unchecked(const RatInputs& inputs,
                                       double fclock_hz) noexcept {
  // One width-1 lane of the shared kernel: the batch path runs the same
  // template at wider lanes, which is what makes scalar and SIMD results
  // bit-identical by construction.
  using S = util::simd::ScalarLane;
  kernel::InputsV<S> in;
  in.elements_in = {static_cast<double>(inputs.dataset.elements_in)};
  in.elements_out = {static_cast<double>(inputs.dataset.elements_out)};
  in.bytes_per_elem = {inputs.dataset.bytes_per_element};
  in.ideal_bw = {inputs.comm.ideal_bw_bytes_per_sec};
  in.alpha_write = {inputs.comm.alpha_write};
  in.alpha_read = {inputs.comm.alpha_read};
  in.ops_per_elem = {inputs.comp.ops_per_element};
  in.throughput_proc = {inputs.comp.throughput_ops_per_cycle};
  in.n_iterations = {static_cast<double>(inputs.software.n_iterations)};
  in.tsoft = {inputs.software.tsoft_sec};
  in.fclock = {fclock_hz};
  const kernel::OutputsV<S> o = kernel::evaluate(in);

  ThroughputPrediction p;
  p.fclock_hz = fclock_hz;
  p.t_write_sec = o.t_write.v;   // Eq. (3)
  p.t_read_sec = o.t_read.v;     // Eq. (2)
  p.t_comm_sec = o.t_comm.v;     // Eq. (1)
  p.t_comp_sec = o.t_comp.v;     // Eq. (4)
  p.t_rc_sb_sec = o.t_rc_sb.v;   // Eq. (5)
  p.t_rc_db_sec = o.t_rc_db.v;   // Eq. (6)
  p.speedup_sb = o.speedup_sb.v; // Eq. (7)
  p.speedup_db = o.speedup_db.v;
  p.util_comp_sb = o.util_comp_sb.v;  // Eq. (8)
  p.util_comm_sb = o.util_comm_sb.v;  // Eq. (9)
  p.util_comp_db = o.util_comp_db.v;  // Eq. (10)
  p.util_comm_db = o.util_comm_db.v;  // Eq. (11)
  return p;
}

ThroughputPrediction predict(const RatInputs& inputs, double fclock_hz) {
  inputs.validate();
  if (fclock_hz <= 0.0)
    throw std::invalid_argument("predict: non-positive clock");
  return predict_unchecked(inputs, fclock_hz);
}

std::vector<ThroughputPrediction> predict_all(const RatInputs& inputs) {
  // validate() guarantees every candidate clock is positive, so the
  // per-clock loop stays on the unchecked path instead of re-validating
  // the worksheet once per clock.
  inputs.validate();
  std::vector<ThroughputPrediction> out;
  out.reserve(inputs.comp.fclock_hz.size());
  for (double f : inputs.comp.fclock_hz)
    out.push_back(predict_unchecked(inputs, f));
  return out;
}

}  // namespace rat::core
