#include "core/throughput.hpp"

#include <algorithm>
#include <stdexcept>

namespace rat::core {

ThroughputPrediction predict(const RatInputs& inputs, double fclock_hz) {
  inputs.validate();
  if (fclock_hz <= 0.0)
    throw std::invalid_argument("predict: non-positive clock");

  ThroughputPrediction p;
  p.fclock_hz = fclock_hz;

  const auto& d = inputs.dataset;
  const auto& c = inputs.comm;

  // Eqs. (2)/(3). Paper convention: "write" moves the input block to the
  // FPGA, "read" returns the results.
  p.t_write_sec = static_cast<double>(d.elements_in) * d.bytes_per_element /
                  (c.alpha_write * c.ideal_bw_bytes_per_sec);
  p.t_read_sec = static_cast<double>(d.elements_out) * d.bytes_per_element /
                 (c.alpha_read * c.ideal_bw_bytes_per_sec);
  p.t_comm_sec = p.t_write_sec + p.t_read_sec;  // Eq. (1)

  // Eq. (4): computation on one buffer's worth of elements.
  p.t_comp_sec = static_cast<double>(d.elements_in) *
                 inputs.comp.ops_per_element /
                 (fclock_hz * inputs.comp.throughput_ops_per_cycle);

  const double n = static_cast<double>(inputs.software.n_iterations);
  p.t_rc_sb_sec = n * (p.t_comm_sec + p.t_comp_sec);           // Eq. (5)
  p.t_rc_db_sec = n * std::max(p.t_comm_sec, p.t_comp_sec);    // Eq. (6)

  p.speedup_sb = inputs.software.tsoft_sec / p.t_rc_sb_sec;    // Eq. (7)
  p.speedup_db = inputs.software.tsoft_sec / p.t_rc_db_sec;

  const double sum = p.t_comm_sec + p.t_comp_sec;
  const double mx = std::max(p.t_comm_sec, p.t_comp_sec);
  p.util_comp_sb = p.t_comp_sec / sum;  // Eq. (8)
  p.util_comm_sb = p.t_comm_sec / sum;  // Eq. (9)
  p.util_comp_db = p.t_comp_sec / mx;   // Eq. (10)
  p.util_comm_db = p.t_comm_sec / mx;   // Eq. (11)
  return p;
}

std::vector<ThroughputPrediction> predict_all(const RatInputs& inputs) {
  inputs.validate();
  std::vector<ThroughputPrediction> out;
  out.reserve(inputs.comp.fclock_hz.size());
  for (double f : inputs.comp.fclock_hz) out.push_back(predict(inputs, f));
  return out;
}

}  // namespace rat::core
