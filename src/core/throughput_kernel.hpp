// The Eqs. (1)-(11) expression tree, written once as a lane-width-agnostic
// template so the scalar predict() path and the SoA batch kernel share the
// exact same sequence of IEEE-754 operations.
//
// Bit-identity contract: every quantity below is computed with the same
// ops in the same order whatever lane type V is — mul, div, add, max, each
// exactly rounded. There is no a*b+c shape anywhere in Eqs. 1-11, so FMA
// contraction cannot occur even on FMA hardware, and no reassociation is
// possible without -ffast-math (which this repo never enables). A lane of
// predict_batch is therefore byte-identical to a call of predict() on the
// same point; tests/core/batch_identity_test.cpp pins this with memcmp.
#pragma once

#include "util/simd.hpp"

namespace rat::core::kernel {

/// One lane-group worth of inputs to Eqs. 1-11, every field already a
/// double (integer worksheet fields are cast once at batch-fill time, with
/// the same static_cast<double> the scalar path performs).
template <typename V>
struct InputsV {
  V elements_in;     ///< Nelements,input
  V elements_out;    ///< Nelements,output
  V bytes_per_elem;  ///< Nbytes/element
  V ideal_bw;        ///< throughput_ideal, bytes/sec
  V alpha_write;     ///< host->FPGA efficiency
  V alpha_read;      ///< FPGA->host efficiency
  V ops_per_elem;    ///< Nops/element
  V throughput_proc; ///< ops/cycle
  V n_iterations;    ///< Niter
  V tsoft;           ///< software baseline, sec
  V fclock;          ///< candidate clock, Hz
};

/// One lane-group worth of the 13 derived quantities (the ThroughputPrediction
/// fields, minus fclock which the caller already has).
template <typename V>
struct OutputsV {
  V t_write, t_read, t_comm, t_comp;
  V t_rc_sb, t_rc_db;
  V speedup_sb, speedup_db;
  V util_comp_sb, util_comm_sb, util_comp_db, util_comm_db;
};

/// Evaluate Eqs. (1)-(11) for one lane group. Mirrors core::predict()
/// line for line; keep the two in sync (the identity test suite will
/// catch any drift bit-exactly).
template <typename V>
inline OutputsV<V> evaluate(const InputsV<V>& in) {
  OutputsV<V> out;

  // Eqs. (2)/(3): numerator and denominator each round once, then divide —
  // identical to `a * b / (c * d)` in the scalar path.
  out.t_write = in.elements_in * in.bytes_per_elem /
                (in.alpha_write * in.ideal_bw);
  out.t_read = in.elements_out * in.bytes_per_elem /
               (in.alpha_read * in.ideal_bw);
  out.t_comm = out.t_write + out.t_read;  // Eq. (1)

  // Eq. (4).
  out.t_comp = in.elements_in * in.ops_per_elem /
               (in.fclock * in.throughput_proc);

  out.t_rc_sb = in.n_iterations * (out.t_comm + out.t_comp);   // Eq. (5)
  out.t_rc_db = in.n_iterations * max(out.t_comm, out.t_comp); // Eq. (6)

  out.speedup_sb = in.tsoft / out.t_rc_sb;  // Eq. (7)
  out.speedup_db = in.tsoft / out.t_rc_db;

  const V sum = out.t_comm + out.t_comp;
  const V mx = max(out.t_comm, out.t_comp);
  out.util_comp_sb = out.t_comp / sum;  // Eq. (8)
  out.util_comm_sb = out.t_comm / sum;  // Eq. (9)
  out.util_comp_db = out.t_comp / mx;   // Eq. (10)
  out.util_comm_db = out.t_comm / mx;   // Eq. (11)
  return out;
}

}  // namespace rat::core::kernel
