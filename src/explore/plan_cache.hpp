// Persistent, content-addressed plan cache for design-space exploration.
//
// The campaign checkpoint (store/checkpoint.hpp) is positional: it replays
// "item #i of this exact campaign". The plan cache is the complementary
// memoization: evaluations keyed by *what was evaluated* — the candidate's
// fingerprint plus the requirements/device context — so overlapping
// campaigns (shifted axes, a re-run after editing an unrelated axis, a
// different process) reuse already-scored points. The same pattern as
// poplibs' ConvReuse: compiled plans cached under a canonical spec key.
//
// Key schema (docs/EXPLORATION.md): the canonical text
//
//   rat.plan.v1|cand=<hex16 candidate_fingerprint>|ctx=<hex16
//   requirements_fingerprint(req, device)>
//
// Both fingerprints are store::Fnv1a over length-delimited canonical
// field serializations (exact double bit patterns), so any change to the
// candidate, the requirements or the device changes the key — a stale
// entry is never *rejected*, it is simply never found. Values are
// version-prefixed, position-independent evaluation payloads
// (core::encode_evaluation_unindexed), durable in a DurableStore: they
// survive kill -9, and a torn final append is truncated on reopen.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>

#include "core/evaluation.hpp"
#include "store/store.hpp"

namespace rat::explore {

class PlanCache {
 public:
  struct Options {
    /// fsync after every insert (crash-durability; see docs/STORE.md).
    bool sync_every_append = true;
  };

  /// Open or create the cache at @p dir. Throws store::StoreError (kIo,
  /// kCorrupt) exactly like DurableStore — a corrupt *snapshot* refuses
  /// to open; a torn journal tail is dropped silently.
  explicit PlanCache(const std::filesystem::path& dir);
  PlanCache(const std::filesystem::path& dir, const Options& options);

  /// Canonical cache key for one (candidate, requirements, device)
  /// triple. Pure function of the fingerprints; campaign-independent.
  static std::string key(const core::DesignCandidate& cand,
                         const core::Requirements& req,
                         const rcsim::Device& device);

  /// Same key built from precomputed fingerprints (the explorer computes
  /// the context fingerprint once per campaign).
  static std::string key(std::uint64_t candidate_fp, std::uint64_t context_fp);

  /// Replay a cached evaluation, re-stamped with this campaign's
  /// enumeration @p index and candidate @p name. Returns nullopt on a
  /// miss — including an entry whose payload fails to decode (version
  /// mismatch or bit rot below the store's CRC granularity), which is
  /// treated as absent rather than fatal.
  std::optional<core::CandidateEvaluation> lookup(const std::string& key,
                                                  std::size_t index,
                                                  const std::string& name);

  /// Memoize one fresh evaluation. Durable on return under
  /// sync_every_append. Thread-safe (DurableStore::put is).
  void insert(const std::string& key, const core::CandidateEvaluation& ev);

  std::size_t size() const { return store_.size(); }
  const store::DurableStore::OpenInfo& open_info() const {
    return store_.open_info();
  }
  const std::filesystem::path& dir() const { return store_.dir(); }

 private:
  store::DurableStore store_;
};

}  // namespace rat::explore
