#include "explore/explorer.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <limits>
#include <optional>
#include <queue>
#include <stdexcept>
#include <unordered_map>

#include "core/evaluation.hpp"
#include "obs/metrics.hpp"
#include "store/checkpoint.hpp"
#include "util/parallel_for.hpp"

namespace rat::explore {

namespace {

using core::CandidateEvaluation;
using core::DesignCandidate;

/// Final disposition of one grid point (docs/EXPLORATION.md). kUntouched
/// points become points_pruned: the search proved nothing about them and
/// the trace assembly never needed them (they lie past the winner).
enum PointStatus : std::uint8_t {
  kUntouched = 0,
  kSkippedPoint,
  kBoundedPoint,
  kEvaluatedPoint,
  kRestoredPoint,
};

enum class EvalKind : std::uint8_t {
  kFresh,
  kRestoredCheckpoint,
  kRestoredCache,
  kBoundedSynth,  ///< throughput rejection proven by the point's prediction
  kViolation,     ///< bound claimed fail, the point's prediction passed
};

/// An axis-aligned, inclusive box of axis indices.
struct Box {
  std::size_t lo[3];
  std::size_t hi[3];
  std::size_t key = 0;  ///< lex index of the low corner (queue priority)

  std::size_t points() const {
    return (hi[0] - lo[0] + 1) * (hi[1] - lo[1] + 1) * (hi[2] - lo[2] + 1);
  }
  bool splittable() const {
    return hi[0] > lo[0] || hi[1] > lo[1] || hi[2] > lo[2];
  }
};

struct ByKey {
  bool operator()(const Box& a, const Box& b) const { return a.key > b.key; }
};

/// Throughput predictions for an arbitrary (non-contiguous) candidate
/// index list, one SoA batch — the leaf/corner twin of
/// core::WindowPredictions, with the same deferred-validation contract.
struct SparsePredictions {
  core::ThroughputBatch batch;
  std::vector<std::exception_ptr> errors;

  void fill(const std::vector<DesignCandidate>& candidates,
            const std::vector<std::size_t>& cids) {
    batch.clear();
    batch.reserve(cids.size());
    errors.assign(cids.size(), nullptr);
    static const core::RatInputs kPlaceholder = [] {
      core::RatInputs p;
      p.name = "<invalid>";
      p.dataset = core::DatasetParams{1, 1, 1.0};
      p.comm = core::CommunicationParams{1.0, 1.0, 1.0};
      p.comp = core::ComputationParams{1.0, 1.0, {1.0}};
      p.software = core::SoftwareParams{1.0, 1};
      return p;
    }();
    for (std::size_t k = 0; k < cids.size(); ++k) {
      try {
        batch.push_back(candidates[cids[k]].inputs,
                        candidates[cids[k]].decision_clock_hz);
      } catch (...) {
        errors[k] = std::current_exception();
        batch.push_back_unchecked(kPlaceholder, 1.0);
      }
    }
    core::predict_batch(batch);
  }
};

struct MemoEntry {
  CandidateEvaluation ev;
  EvalKind kind;
};

class PrunedExploration {
 public:
  PrunedExploration(const core::DesignAxes& axes,
                    const core::CandidateFactory& factory,
                    const core::Requirements& req,
                    const rcsim::Device& device, const ExploreOptions& options)
      : axes_(axes), factory_(factory), req_(req), device_(device),
        options_(options), policy_(options.policy) {}

  ExploreResult run();

 private:
  // --- grid ----------------------------------------------------------
  std::size_t lex(std::size_t ip, std::size_t ifc, std::size_t ib) const {
    return (ip * nf_ + ifc) * nb_ + ib;
  }
  void build_grid();

  // --- search --------------------------------------------------------
  void search();
  std::optional<std::size_t> min_cand_in_box(const Box& b) const;
  struct Bound {
    double lb = 0.0, ub = 0.0;
  };
  std::optional<Bound> corner_bound(const Box& b);
  void mark_bounded(const Box& b);
  void leaf_evaluate(const Box& b);
  void evaluate_point(std::size_t ci, std::size_t lex_index,
                      const SparsePredictions& preds, std::size_t k);
  void note(std::size_t ci, std::size_t lex_index, CandidateEvaluation&& ev,
            EvalKind kind);

  // --- assembly ------------------------------------------------------
  struct Item {
    CandidateEvaluation ev;
    EvalKind kind = EvalKind::kFresh;
    bool cache_missed = false;
    bool cache_put = false;
  };
  // Safe from assembly workers: it only reads memo_/status_ and calls the
  // thread-safe checkpoint record / cache insert.
  Item assemble_one(std::size_t ci, std::size_t k,
                    const core::WindowPredictions& window);
  void assemble_full(ExploreResult& result);
  void assemble_elided(ExploreResult& result);
  bool merge(std::size_t ci, Item&& item, core::MethodologyOutcome& out);

  void finalize(ExploreResult& result);

  double gate_speedup(const core::ThroughputPrediction& pred) const {
    return req_.double_buffered ? pred.speedup_db : pred.speedup_sb;
  }

  const core::DesignAxes& axes_;
  const core::CandidateFactory& factory_;
  const core::Requirements& req_;
  const rcsim::Device& device_;
  const ExploreOptions& options_;
  const PruningPolicy& policy_;

  std::size_t np_ = 0, nf_ = 0, nb_ = 0, total_ = 0;
  std::vector<DesignCandidate> candidates_;
  std::vector<core::DesignPoint> points_;
  std::vector<std::ptrdiff_t> cand_of_point_;  ///< lex → candidate, -1 skip
  std::vector<std::size_t> lex_of_cand_;
  std::vector<std::uint8_t> status_;

  std::optional<store::CampaignCheckpoint> checkpoint_;
  PlanCache* cache_ = nullptr;
  std::uint64_t context_fp_ = 0;

  std::optional<std::size_t> incumbent_;
  std::unordered_map<std::size_t, MemoEntry> memo_;
  /// Corner-prediction memo: lex index → gate-mode speedup (NaN when the
  /// corner candidate failed validation and cannot bound anything).
  std::unordered_map<std::size_t, double> corner_speedup_;

  ExploreStats stats_;
};

void PrunedExploration::build_grid() {
  np_ = axes_.parallelism.size();
  nf_ = axes_.fclock_hz.size();
  nb_ = axes_.format_bits.size();
  cand_of_point_.assign(total_, -1);
  lex_of_cand_.assign(candidates_.size(), 0);
  status_.assign(total_, kSkippedPoint);
  // The factory was already consulted by enumerate_design_space; recover
  // the lex ↔ candidate mapping by walking the grid in the same order and
  // matching the per-candidate design points head-on.
  std::size_t next = 0;
  for (std::size_t ip = 0; ip < np_; ++ip) {
    for (std::size_t ifc = 0; ifc < nf_; ++ifc) {
      for (std::size_t ib = 0; ib < nb_; ++ib) {
        if (next >= points_.size()) return;
        const core::DesignPoint& p = points_[next];
        if (p.parallelism == axes_.parallelism[ip] &&
            p.fclock_hz == axes_.fclock_hz[ifc] &&
            p.format_bits == axes_.format_bits[ib]) {
          const std::size_t l = lex(ip, ifc, ib);
          cand_of_point_[l] = static_cast<std::ptrdiff_t>(next);
          lex_of_cand_[next] = l;
          status_[l] = kUntouched;
          ++next;
        }
      }
    }
  }
}

std::optional<std::size_t> PrunedExploration::min_cand_in_box(
    const Box& b) const {
  for (std::size_t ip = b.lo[0]; ip <= b.hi[0]; ++ip)
    for (std::size_t ifc = b.lo[1]; ifc <= b.hi[1]; ++ifc)
      for (std::size_t ib = b.lo[2]; ib <= b.hi[2]; ++ib) {
        const std::ptrdiff_t ci = cand_of_point_[lex(ip, ifc, ib)];
        if (ci >= 0) return static_cast<std::size_t>(ci);
      }
  return std::nullopt;
}

std::optional<PrunedExploration::Bound> PrunedExploration::corner_bound(
    const Box& b) {
  // Distinct corners: {lo, hi} per axis, collapsed where the axis span
  // is a single index. At most 8 points.
  std::size_t corners[8];
  std::size_t n_corners = 0;
  const std::size_t pe = b.lo[0] == b.hi[0] ? 1 : 2;
  const std::size_t fe = b.lo[1] == b.hi[1] ? 1 : 2;
  const std::size_t be = b.lo[2] == b.hi[2] ? 1 : 2;
  for (std::size_t a = 0; a < pe; ++a)
    for (std::size_t c = 0; c < fe; ++c)
      for (std::size_t d = 0; d < be; ++d)
        corners[n_corners++] = lex(a ? b.hi[0] : b.lo[0],
                                   c ? b.hi[1] : b.lo[1],
                                   d ? b.hi[2] : b.lo[2]);
  // A skipped corner leaves the box unbounded: the factory punched a hole
  // where the extremum would be read. The caller splits further instead.
  for (std::size_t c = 0; c < n_corners; ++c)
    if (cand_of_point_[corners[c]] < 0) return std::nullopt;

  std::vector<std::size_t> fresh_lex, fresh_ci;
  for (std::size_t c = 0; c < n_corners; ++c)
    if (corner_speedup_.find(corners[c]) == corner_speedup_.end()) {
      fresh_lex.push_back(corners[c]);
      fresh_ci.push_back(
          static_cast<std::size_t>(cand_of_point_[corners[c]]));
    }
  if (!fresh_ci.empty()) {
    SparsePredictions preds;
    preds.fill(candidates_, fresh_ci);
    stats_.corner_evaluations += fresh_ci.size();
    for (std::size_t k = 0; k < fresh_ci.size(); ++k)
      corner_speedup_[fresh_lex[k]] =
          preds.errors[k] ? std::numeric_limits<double>::quiet_NaN()
                          : gate_speedup(preds.batch.prediction(k));
  }

  Bound bound{std::numeric_limits<double>::infinity(),
              -std::numeric_limits<double>::infinity()};
  for (std::size_t c = 0; c < n_corners; ++c) {
    const double s = corner_speedup_.at(corners[c]);
    if (std::isnan(s)) return std::nullopt;
    bound.lb = std::min(bound.lb, s);
    bound.ub = std::max(bound.ub, s);
  }
  return bound;
}

void PrunedExploration::mark_bounded(const Box& b) {
  for (std::size_t ip = b.lo[0]; ip <= b.hi[0]; ++ip)
    for (std::size_t ifc = b.lo[1]; ifc <= b.hi[1]; ++ifc)
      for (std::size_t ib = b.lo[2]; ib <= b.hi[2]; ++ib) {
        const std::size_t l = lex(ip, ifc, ib);
        if (cand_of_point_[l] >= 0) status_[l] = kBoundedPoint;
      }
}

void PrunedExploration::note(std::size_t ci, std::size_t lex_index,
                             CandidateEvaluation&& ev, EvalKind kind) {
  if (ev.passed && (!incumbent_ || ci < *incumbent_)) incumbent_ = ci;
  switch (kind) {
    case EvalKind::kBoundedSynth: status_[lex_index] = kBoundedPoint; break;
    case EvalKind::kRestoredCheckpoint:
    case EvalKind::kRestoredCache: status_[lex_index] = kRestoredPoint; break;
    default: status_[lex_index] = kEvaluatedPoint; break;
  }
  memo_.emplace(ci, MemoEntry{std::move(ev), kind});
}

void PrunedExploration::evaluate_point(std::size_t ci, std::size_t lex_index,
                                       const SparsePredictions& preds,
                                       std::size_t k) {
  const DesignCandidate& cand = candidates_[ci];
  std::uint64_t fp = 0;
  if (checkpoint_ || cache_) fp = core::candidate_fingerprint(cand);
  if (checkpoint_) {
    if (const std::string* payload = checkpoint_->restored_payload(ci, fp)) {
      note(ci, lex_index, core::decode_evaluation(*payload),
           EvalKind::kRestoredCheckpoint);
      return;
    }
  }
  // A candidate whose worksheet fails validation cannot pass; whether the
  // run must *throw* for it depends on where the winner lands, which only
  // the in-order trace assembly knows — leave it untouched here.
  if (preds.errors[k]) return;
  const core::ThroughputPrediction pred = preds.batch.prediction(k);
  // The point's own prediction is an exact bound on itself: a throughput
  // rejection synthesized here is byte-identical to a full evaluation's
  // (same gate, same strings) at none of the deeper-gate cost.
  CandidateEvaluation synth;
  if (!core::apply_throughput_gate(synth, ci, cand.inputs.name, req_, pred)) {
    note(ci, lex_index, std::move(synth), EvalKind::kBoundedSynth);
    return;
  }
  if (cache_) {
    const std::string key = PlanCache::key(fp, context_fp_);
    if (auto ev = cache_->lookup(key, ci, cand.inputs.name)) {
      ++stats_.cache_hits;
      note(ci, lex_index, std::move(*ev), EvalKind::kRestoredCache);
      return;
    }
    ++stats_.cache_misses;
  }
  CandidateEvaluation ev =
      core::evaluate_candidate(ci, cand, req_, device_, pred);
  if (checkpoint_) checkpoint_->record(ci, fp, core::encode_evaluation(ev));
  if (cache_) {
    cache_->insert(PlanCache::key(fp, context_fp_), ev);
    ++stats_.cache_puts;
  }
  note(ci, lex_index, std::move(ev), EvalKind::kFresh);
}

void PrunedExploration::leaf_evaluate(const Box& b) {
  std::vector<std::size_t> lexes, cids;
  for (std::size_t ip = b.lo[0]; ip <= b.hi[0]; ++ip)
    for (std::size_t ifc = b.lo[1]; ifc <= b.hi[1]; ++ifc)
      for (std::size_t ib = b.lo[2]; ib <= b.hi[2]; ++ib) {
        const std::size_t l = lex(ip, ifc, ib);
        if (cand_of_point_[l] < 0) continue;
        lexes.push_back(l);
        cids.push_back(static_cast<std::size_t>(cand_of_point_[l]));
      }
  if (cids.empty()) return;
  SparsePredictions preds;
  preds.fill(candidates_, cids);
  // cids ascend with the box's lex order, so the first full pass makes
  // every later leaf point prunable on the spot.
  for (std::size_t k = 0; k < cids.size(); ++k) {
    if (incumbent_ && cids[k] > *incumbent_) break;
    evaluate_point(cids[k], lexes[k], preds, k);
  }
}

void PrunedExploration::search() {
  obs::ScopedTimer timer("explore.search");
  std::priority_queue<Box, std::vector<Box>, ByKey> queue;
  queue.push(Box{{0, 0, 0}, {np_ - 1, nf_ - 1, nb_ - 1}, 0});
  while (!queue.empty()) {
    const Box b = queue.top();
    queue.pop();
    ++stats_.regions_examined;
    const std::optional<std::size_t> min_ci = min_cand_in_box(b);
    if (!min_ci) continue;  // the factory skipped the whole box
    if (incumbent_ && *min_ci > *incumbent_) {
      ++stats_.regions_pruned_incumbent;
      continue;
    }
    bool proven_all_pass = false;
    if (policy_.assume_monotone && b.points() > 1) {
      if (const std::optional<Bound> bound = corner_bound(b)) {
        if (bound->ub < req_.min_speedup) {
          ++stats_.regions_pruned_bound;
          mark_bounded(b);
          continue;
        }
        // Every point passes the throughput gate: splitting further can
        // prune nothing, so walk the box in enumeration order directly.
        proven_all_pass = bound->lb >= req_.min_speedup;
      }
    }
    if (proven_all_pass || b.points() <= policy_.leaf_points ||
        !b.splittable()) {
      leaf_evaluate(b);
      continue;
    }
    int axis = 0;
    std::size_t span = b.hi[0] - b.lo[0];
    for (int a = 1; a < 3; ++a)
      if (b.hi[a] - b.lo[a] > span) {
        span = b.hi[a] - b.lo[a];
        axis = a;
      }
    const std::size_t mid = b.lo[axis] + (b.hi[axis] - b.lo[axis]) / 2;
    Box left = b;
    left.hi[axis] = mid;
    Box right = b;
    right.lo[axis] = mid + 1;
    left.key = lex(left.lo[0], left.lo[1], left.lo[2]);
    right.key = lex(right.lo[0], right.lo[1], right.lo[2]);
    queue.push(left);
    queue.push(right);
    ++stats_.regions_split;
  }
}

PrunedExploration::Item PrunedExploration::assemble_one(
    std::size_t ci, std::size_t k, const core::WindowPredictions& window) {
  Item item;
  if (const auto it = memo_.find(ci); it != memo_.end()) {
    item.ev = it->second.ev;
    item.kind = it->second.kind == EvalKind::kViolation
                    ? EvalKind::kFresh  // violations are tallied once
                    : it->second.kind;
    return item;
  }
  const DesignCandidate& cand = candidates_[ci];
  std::uint64_t fp = 0;
  if (checkpoint_ || cache_) fp = core::candidate_fingerprint(cand);
  if (checkpoint_) {
    if (const std::string* payload = checkpoint_->restored_payload(ci, fp)) {
      item.ev = core::decode_evaluation(*payload);
      item.kind = EvalKind::kRestoredCheckpoint;
      return item;
    }
  }
  const bool bounded = status_[lex_of_cand_[ci]] == kBoundedPoint;
  // Fresh work (synthesized or full) surfaces the validation error
  // predict() would have thrown, at the same point of the run.
  if (window.errors[k]) std::rethrow_exception(window.errors[k]);
  const core::ThroughputPrediction pred = window.batch.prediction(k);
  if (bounded) {
    // Re-check the bound's claim against the point's own prediction: a
    // monotone factory can never fail this, a non-monotone one demotes
    // the point to a full evaluation (and may move the winner earlier).
    CandidateEvaluation synth;
    if (!core::apply_throughput_gate(synth, ci, cand.inputs.name, req_,
                                     pred)) {
      item.ev = std::move(synth);
      item.kind = EvalKind::kBoundedSynth;
      return item;
    }
    item.kind = EvalKind::kViolation;
  } else {
    if (cache_) {
      const std::string key = PlanCache::key(fp, context_fp_);
      if (auto ev = cache_->lookup(key, ci, cand.inputs.name)) {
        item.ev = std::move(*ev);
        item.kind = EvalKind::kRestoredCache;
        return item;
      }
      item.cache_missed = true;
    }
    item.kind = item.kind == EvalKind::kViolation ? item.kind
                                                  : EvalKind::kFresh;
  }
  item.ev = core::evaluate_candidate(ci, cand, req_, device_, pred);
  if (checkpoint_)
    checkpoint_->record(ci, fp, core::encode_evaluation(item.ev));
  if (cache_) {
    cache_->insert(PlanCache::key(fp, context_fp_), item.ev);
    item.cache_put = true;
  }
  return item;
}

bool PrunedExploration::merge(std::size_t ci, Item&& item,
                              core::MethodologyOutcome& out) {
  const std::size_t l = lex_of_cand_[ci];
  switch (item.kind) {
    case EvalKind::kFresh:
      status_[l] = kEvaluatedPoint;
      break;
    case EvalKind::kViolation:
      status_[l] = kEvaluatedPoint;
      ++stats_.bound_violations;
      break;
    case EvalKind::kRestoredCheckpoint:
    case EvalKind::kRestoredCache:
      status_[l] = kRestoredPoint;
      if (item.kind == EvalKind::kRestoredCache &&
          memo_.find(ci) == memo_.end())
        ++stats_.cache_hits;
      break;
    case EvalKind::kBoundedSynth:
      status_[l] = kBoundedPoint;
      break;
  }
  if (item.cache_missed) ++stats_.cache_misses;
  if (item.cache_put) ++stats_.cache_puts;
  for (auto& e : item.ev.trace) out.trace.push_back(std::move(e));
  out.predictions.push_back(item.ev.prediction);
  if (item.ev.passed) {
    out.proceed = true;
    out.accepted_index = ci;
    return true;
  }
  out.last_reject = item.ev.reject;
  return false;
}

void PrunedExploration::assemble_full(ExploreResult& result) {
  obs::ScopedTimer timer("explore.assemble");
  core::MethodologyOutcome& out = result.design.outcome;
  const std::size_t n = candidates_.size();
  // A bound violation can only move the winner earlier, so nothing past
  // the search incumbent can ever reach the trace.
  const std::size_t limit = incumbent_ ? *incumbent_ + 1 : n;
  const std::size_t threads =
      std::min(util::resolve_thread_count(options_.n_threads), limit);
  const std::size_t window_size = threads <= 1 ? 256 : threads * 4;
  core::WindowPredictions window;
  bool done = false;
  for (std::size_t start = 0; start < limit && !done; start += window_size) {
    const std::size_t count = std::min(window_size, limit - start);
    window.fill(candidates_, start, count);
    if (threads <= 1) {
      for (std::size_t k = 0; k < count && !done; ++k)
        done = merge(start + k, assemble_one(start + k, k, window), out);
    } else {
      auto items = util::parallel_map(
          count,
          [&](std::size_t k) { return assemble_one(start + k, k, window); },
          threads);
      for (std::size_t k = 0; k < count && !done; ++k)
        done = merge(start + k, std::move(items[k]), out);
    }
  }
  if (out.proceed) result.winner_index = out.accepted_index;
}

void PrunedExploration::assemble_elided(ExploreResult& result) {
  obs::ScopedTimer timer("explore.assemble");
  core::MethodologyOutcome& out = result.design.outcome;
  std::vector<std::size_t> order;
  order.reserve(memo_.size());
  for (const auto& [ci, entry] : memo_) order.push_back(ci);
  std::sort(order.begin(), order.end());
  for (const std::size_t ci : order) {
    if (incumbent_ && ci > *incumbent_) break;
    const MemoEntry& m = memo_.at(ci);
    for (const auto& e : m.ev.trace) out.trace.push_back(e);
    out.predictions.push_back(m.ev.prediction);
    if (m.ev.passed) {
      out.proceed = true;
      // The sparse trace still names real enumeration indices; the
      // accepted index addresses the sparse predictions vector.
      out.accepted_index = out.predictions.size() - 1;
      result.winner_index = ci;
      break;
    }
    out.last_reject = m.ev.reject;
  }
}

void PrunedExploration::finalize(ExploreResult& result) {
  stats_.points_total = total_;
  for (const std::uint8_t s : status_) {
    switch (s) {
      case kSkippedPoint: ++stats_.points_skipped; break;
      case kBoundedPoint: ++stats_.points_bounded; break;
      case kEvaluatedPoint: ++stats_.points_evaluated; break;
      case kRestoredPoint: ++stats_.points_restored; break;
      default: ++stats_.points_pruned; break;
    }
  }
  result.design.points_restored = stats_.points_restored;
  result.stats = stats_;
  result.front = pareto_front(result.design.outcome, req_.double_buffered);
  if (obs::enabled()) {
    obs::Registry& reg = obs::Registry::global();
    reg.add_counter("explore.points_total", stats_.points_total);
    reg.add_counter("explore.points_skipped", stats_.points_skipped);
    reg.add_counter("explore.points_evaluated", stats_.points_evaluated);
    reg.add_counter("explore.points_bounded", stats_.points_bounded);
    reg.add_counter("explore.points_restored", stats_.points_restored);
    reg.add_counter("explore.points_pruned", stats_.points_pruned);
    reg.add_counter("explore.regions_examined", stats_.regions_examined);
    reg.add_counter("explore.regions_split", stats_.regions_split);
    reg.add_counter("explore.regions_pruned_bound",
                    stats_.regions_pruned_bound);
    reg.add_counter("explore.regions_pruned_incumbent",
                    stats_.regions_pruned_incumbent);
    reg.add_counter("explore.corner_evaluations", stats_.corner_evaluations);
    reg.add_counter("explore.bound_violations", stats_.bound_violations);
    reg.add_counter("explore.cache.hit", stats_.cache_hits);
    reg.add_counter("explore.cache.miss", stats_.cache_misses);
    reg.add_counter("explore.cache.put", stats_.cache_puts);
  }
}

ExploreResult PrunedExploration::run() {
  obs::ScopedTimer timer("explore.design_space");
  if (req_.min_speedup <= 0.0)
    throw std::invalid_argument(
        "explore_design_space_pruned: min_speedup <= 0");
  ExploreResult result;
  total_ = axes_.size();
  result.design.points_total = total_;
  candidates_ = core::enumerate_design_space(
      axes_, factory_, &result.design.skipped_labels, &points_);
  result.design.points_skipped = result.design.skipped_labels.size();
  if (candidates_.empty())
    throw std::invalid_argument(
        "explore_design_space_pruned: factory skipped every point");
  build_grid();

  if (options_.checkpoint != nullptr) {
    store::CampaignCheckpoint::Options opts;
    opts.sync_every_append = options_.checkpoint->sync_every_append;
    checkpoint_.emplace(
        options_.checkpoint->path, "rat.designspace.v1",
        core::design_space_campaign_fingerprint(axes_, req_, device_), opts);
  }
  cache_ = options_.plan_cache;
  if (cache_) context_fp_ = core::requirements_fingerprint(req_, device_);

  if (policy_.prune) search();
  if (policy_.prune && !policy_.full_trace)
    assemble_elided(result);
  else
    assemble_full(result);
  finalize(result);
  return result;
}

}  // namespace

ExploreResult explore_design_space_pruned(
    const core::DesignAxes& axes, const core::CandidateFactory& factory,
    const core::Requirements& req, const rcsim::Device& device,
    const ExploreOptions& options) {
  return PrunedExploration(axes, factory, req, device, options).run();
}

std::vector<ParetoPoint> pareto_front(const core::MethodologyOutcome& outcome,
                                      bool double_buffered) {
  std::vector<ParetoPoint> front;
  double best = -std::numeric_limits<double>::infinity();
  std::size_t pos = 0;
  bool have_current = false;
  std::size_t current = 0;
  // Trace entries for one candidate are contiguous and in evaluation
  // order, so each index transition pairs the next candidate with the
  // next prediction.
  for (const core::TraceEntry& e : outcome.trace) {
    if (have_current && e.candidate_index == current) continue;
    have_current = true;
    current = e.candidate_index;
    if (pos >= outcome.predictions.size()) break;
    const core::ThroughputPrediction& p = outcome.predictions[pos++];
    const double s = double_buffered ? p.speedup_db : p.speedup_sb;
    if (s > best) {
      best = s;
      front.push_back({e.candidate_index, e.candidate_name, p});
    }
  }
  return front;
}

}  // namespace rat::explore
