#include "explore/plan_cache.hpp"

#include <cinttypes>
#include <cstdio>

#include "store/error.hpp"

namespace rat::explore {

namespace {

constexpr std::uint8_t kPayloadVersion = 1;

store::DurableStore::Options store_options(const PlanCache::Options& opts) {
  store::DurableStore::Options o;
  o.sync_every_append = opts.sync_every_append;
  return o;
}

}  // namespace

PlanCache::PlanCache(const std::filesystem::path& dir)
    : PlanCache(dir, Options()) {}

PlanCache::PlanCache(const std::filesystem::path& dir, const Options& options)
    : store_(dir, store_options(options)) {}

std::string PlanCache::key(std::uint64_t candidate_fp,
                           std::uint64_t context_fp) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "rat.plan.v1|cand=%016" PRIx64
                                 "|ctx=%016" PRIx64,
                candidate_fp, context_fp);
  return buf;
}

std::string PlanCache::key(const core::DesignCandidate& cand,
                           const core::Requirements& req,
                           const rcsim::Device& device) {
  return key(core::candidate_fingerprint(cand),
             core::requirements_fingerprint(req, device));
}

std::optional<core::CandidateEvaluation> PlanCache::lookup(
    const std::string& key, std::size_t index, const std::string& name) {
  const std::optional<std::string> payload = store_.get(key);
  if (!payload) return std::nullopt;
  // An undecodable payload (wrong version, bit rot) is a miss, not an
  // error: the caller re-evaluates and insert() overwrites the entry.
  try {
    if (payload->empty() ||
        static_cast<std::uint8_t>((*payload)[0]) != kPayloadVersion)
      return std::nullopt;
    return core::decode_evaluation_unindexed(
        std::string_view(*payload).substr(1), index, name);
  } catch (const store::StoreError&) {
    return std::nullopt;
  }
}

void PlanCache::insert(const std::string& key,
                       const core::CandidateEvaluation& ev) {
  std::string payload;
  payload.push_back(static_cast<char>(kPayloadVersion));
  payload += core::encode_evaluation_unindexed(ev);
  store_.put(key, payload);
}

}  // namespace rat::explore
