// Branch-and-bound design-space exploration (docs/EXPLORATION.md).
//
// explore_design_space scores every permutation of the axes grid. This
// module prunes instead: for the factories the paper's case studies use,
// Eqs. 5-6 make predicted speedup monotone along each axis (parallelism
// raises throughput_proc, fclock raises the decision clock, wider formats
// raise bytes/element), so the maximum speedup over an axis-aligned
// subregion of the grid is attained at one of its corners. Best-first
// branch-and-bound over such subregions proves whole boxes fail the
// throughput gate from at most 2^3 corner predictions (batched through
// core::ThroughputBatch), then splits only the boxes that straddle the
// pass/fail frontier — the number of full gate-pipeline evaluations drops
// from O(points before the winner) to O(frontier surface).
//
// Correctness does not depend on the bounds. With full_trace (default)
// the result is unconditionally bit-identical to the exhaustive
// explorer's — winner, trace, predictions, skipped labels — because every
// bound-rejected point before the winner is still checked against its own
// batch prediction when the trace is assembled; a bound violation (a
// non-monotone custom factory) demotes that point to a full evaluation on
// the spot, and can only move the winner *earlier*, exactly where the
// exhaustive scan would have found it. Bounds therefore only ever save
// work, never change answers. full_trace=false additionally elides the
// proven-fail regions from the trace (the wall-clock headline mode);
// winner and skipped labels remain identical for monotone factories.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/designspace.hpp"
#include "explore/plan_cache.hpp"

namespace rat::explore {

/// Knobs of the branch-and-bound search.
struct PruningPolicy {
  /// Master switch. false = per-point fallback: candidates are evaluated
  /// in enumeration order exactly like explore_design_space (plan-cache
  /// and checkpoint replay still apply) — the explicit escape hatch for
  /// factories whose speedup is not monotone along the axes.
  bool prune = true;
  /// The factory's predicted speedup is monotone along every axis (the
  /// direction may differ per axis); this is what makes corner bounds
  /// admissible. With full_trace a wrong claim costs nothing but the
  /// pruning win (violations are caught per point); without it, see
  /// docs/EXPLORATION.md. false disables corner bounds but keeps the
  /// incumbent-based pruning.
  bool assume_monotone = true;
  /// Reproduce the exhaustive trace and predictions byte-for-byte: every
  /// pre-winner point appears, proven-fail points as synthesized
  /// throughput rejections. false skips materializing proven-fail
  /// regions entirely — the result's trace/predictions then cover only
  /// the points actually evaluated (ExploreResult::winner_index still
  /// names the enumeration index of the same winner).
  bool full_trace = true;
  /// Boxes of at most this many grid points are evaluated exactly
  /// instead of split further.
  std::size_t leaf_points = 8;
};

/// Where every grid point ended up, plus search/cache effort counters.
/// Invariant (asserted by the property tests):
///   points_skipped + points_bounded + points_evaluated
///     + points_restored + points_pruned == points_total.
struct ExploreStats {
  std::size_t points_total = 0;
  std::size_t points_skipped = 0;    ///< factory returned nullopt
  std::size_t points_evaluated = 0;  ///< fresh full gate-pipeline runs
  std::size_t points_bounded = 0;    ///< throughput-fail proven by a bound
  std::size_t points_restored = 0;   ///< replayed from cache/checkpoint
  std::size_t points_pruned = 0;     ///< never touched (past the winner)

  std::size_t regions_examined = 0;
  std::size_t regions_split = 0;
  std::size_t regions_pruned_bound = 0;      ///< whole box proven to fail
  std::size_t regions_pruned_incumbent = 0;  ///< whole box past the winner
  std::size_t corner_evaluations = 0;  ///< model runs spent on bounds
  /// Bounded points whose own prediction passed the gate after all (a
  /// non-monotone factory); each was demoted to a full evaluation.
  std::size_t bound_violations = 0;

  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t cache_puts = 0;
};

/// One point of the cost/speedup Pareto front. Enumeration is cheapest
/// first, so the front is the strictly-increasing-speedup subsequence of
/// the evaluated predictions: every entry is the cheapest design reaching
/// its speedup.
struct ParetoPoint {
  std::size_t candidate_index = 0;  ///< enumeration index (cost rank)
  std::string name;
  core::ThroughputPrediction prediction;
};

struct ExploreOptions {
  PruningPolicy policy;
  /// Threads for the trace-assembly evaluation windows (same semantics
  /// and byte-identical results as explore_design_space's n_threads).
  std::size_t n_threads = 1;
  /// Optional positional campaign checkpoint — same file format and
  /// campaign identity as explore_design_space, so checkpoints written
  /// by either explorer resume under the other.
  const core::DesignSpaceCheckpoint* checkpoint = nullptr;
  /// Optional content-addressed plan cache (cross-campaign reuse).
  PlanCache* plan_cache = nullptr;
};

struct ExploreResult {
  /// With full_trace: bit-identical to explore_design_space's result.
  /// Without: trace/predictions cover only the evaluated points (in
  /// enumeration order; accepted_index indexes that sparse vector).
  core::DesignSpaceResult design;
  ExploreStats stats;
  /// Enumeration index of the accepted candidate (the same index
  /// exhaustive search reports), regardless of full_trace.
  std::optional<std::size_t> winner_index;
  /// Cost/speedup front over the evaluated points (see ParetoPoint).
  std::vector<ParetoPoint> front;
};

/// Branch-and-bound twin of core::explore_design_space. Same factory
/// contract, same skipped-label bookkeeping, same checkpoint semantics;
/// throws the same validation errors at the same points of the run.
ExploreResult explore_design_space_pruned(
    const core::DesignAxes& axes, const core::CandidateFactory& factory,
    const core::Requirements& req, const rcsim::Device& device,
    const ExploreOptions& options = {});

/// The cost/speedup Pareto front of any methodology outcome (exhaustive
/// or pruned): candidates are scored in cost-ascending order, so the
/// front is exactly the strictly-increasing subsequence of per-candidate
/// speedups (single- or double-buffered per @p double_buffered).
/// Candidate indices and names are recovered from the trace.
std::vector<ParetoPoint> pareto_front(const core::MethodologyOutcome& outcome,
                                      bool double_buffered);

}  // namespace rat::explore
