#include "util/cli.hpp"

#include <cerrno>
#include <cstdlib>
#include <stdexcept>

namespace rat::util {

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      arg.erase(0, 2);
      const auto eq = arg.find('=');
      if (eq == std::string::npos)
        values_[arg] = "true";
      else
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

bool Cli::has(const std::string& key) const { return values_.count(key) > 0; }

std::optional<std::string> Cli::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Cli::get_or(const std::string& key,
                        const std::string& fallback) const {
  return get(key).value_or(fallback);
}

double Cli::get_double(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  char* end = nullptr;
  const double x = std::strtod(v->c_str(), &end);
  if (end == v->c_str() || *end != '\0')
    throw std::invalid_argument("Cli: --" + key + " is not a number: " + *v);
  return x;
}

long long Cli::get_int(const std::string& key, long long fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  errno = 0;
  char* end = nullptr;
  const long long x = std::strtoll(v->c_str(), &end, 10);
  if (end == v->c_str() || *end != '\0' || errno == ERANGE)
    throw std::invalid_argument("Cli: --" + key + " is not an integer: " + *v);
  return x;
}

std::size_t Cli::get_size_t(const std::string& key, std::size_t fallback,
                            std::size_t min_value,
                            std::size_t max_value) const {
  const auto v = get(key);
  if (!v) return fallback;
  if (v->empty() || v->front() == '-' || v->front() == '+')
    throw std::invalid_argument("Cli: --" + key +
                                " is not an unsigned integer: " + *v);
  errno = 0;
  char* end = nullptr;
  const unsigned long long x = std::strtoull(v->c_str(), &end, 10);
  if (end == v->c_str() || *end != '\0' || errno == ERANGE ||
      x > std::numeric_limits<std::size_t>::max())
    throw std::invalid_argument("Cli: --" + key +
                                " is not an unsigned integer: " + *v);
  if (x < min_value || x > max_value)
    throw std::invalid_argument(
        "Cli: --" + key + "=" + *v + " outside [" +
        std::to_string(min_value) + ", " + std::to_string(max_value) + "]");
  return static_cast<std::size_t>(x);
}

bool Cli::get_bool(const std::string& key, bool fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  if (*v == "true" || *v == "1" || *v == "yes") return true;
  if (*v == "false" || *v == "0" || *v == "no") return false;
  throw std::invalid_argument("Cli: --" + key + " is not a boolean: " + *v);
}

std::vector<std::string> Cli::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, _] : values_) out.push_back(k);
  return out;
}

}  // namespace rat::util
