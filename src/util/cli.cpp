#include "util/cli.hpp"

#include <cstdlib>
#include <stdexcept>

namespace rat::util {

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      arg.erase(0, 2);
      const auto eq = arg.find('=');
      if (eq == std::string::npos)
        values_[arg] = "true";
      else
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

bool Cli::has(const std::string& key) const { return values_.count(key) > 0; }

std::optional<std::string> Cli::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Cli::get_or(const std::string& key,
                        const std::string& fallback) const {
  return get(key).value_or(fallback);
}

double Cli::get_double(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  char* end = nullptr;
  const double x = std::strtod(v->c_str(), &end);
  if (end == v->c_str() || *end != '\0')
    throw std::invalid_argument("Cli: --" + key + " is not a number: " + *v);
  return x;
}

long long Cli::get_int(const std::string& key, long long fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  char* end = nullptr;
  const long long x = std::strtoll(v->c_str(), &end, 10);
  if (end == v->c_str() || *end != '\0')
    throw std::invalid_argument("Cli: --" + key + " is not an integer: " + *v);
  return x;
}

bool Cli::get_bool(const std::string& key, bool fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  if (*v == "true" || *v == "1" || *v == "yes") return true;
  if (*v == "false" || *v == "0" || *v == "no") return false;
  throw std::invalid_argument("Cli: --" + key + " is not a boolean: " + *v);
}

std::vector<std::string> Cli::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, _] : values_) out.push_back(k);
  return out;
}

}  // namespace rat::util
