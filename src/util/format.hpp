// Numeric formatting helpers used by worksheets, tables and benches.
//
// The paper reports times in scientific notation with three significant
// figures ("5.56E-6 secs") and utilizations as integer percentages; these
// helpers reproduce that style so our output is directly comparable.
#pragma once

#include <string>

namespace rat::util {

/// Format @p value like the paper's tables: "5.56E-6". Three significant
/// figures, uppercase exponent marker, no '+' on positive exponents.
std::string sci(double value, int sig_figs = 3);

/// Format as a percentage with @p decimals fractional digits: "15%", "0.4%".
/// @p fraction is in [0,1] units (0.15 -> "15%").
std::string percent(double fraction, int decimals = 0);

/// Fixed-point decimal with @p decimals fractional digits ("10.6").
std::string fixed(double value, int decimals = 1);

/// Human-readable byte count ("2.0 KB", "1.0 GB"); powers of 1024.
std::string bytes(double n);

/// Human-readable SI rate, e.g. hertz or ops/s ("150 MHz" with unit="Hz").
std::string si(double value, const std::string& unit);

/// Left-pad / right-pad a string with spaces to @p width.
std::string pad_left(const std::string& s, std::size_t width);
std::string pad_right(const std::string& s, std::size_t width);

/// True when |a-b| <= tol * max(|a|,|b|,1e-300). Used throughout tests.
bool approx_equal(double a, double b, double rel_tol = 1e-9);

}  // namespace rat::util
