#include "util/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace rat::util {

std::uint64_t Rng::next_u64() {
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  if (!(lo < hi)) throw std::invalid_argument("Rng::uniform: lo >= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("Rng::uniform_index: n == 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = n * (UINT64_MAX / n);
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % n;
}

double Rng::normal() {
  if (have_cached_) {
    have_cached_ = false;
    return cached_;
  }
  double u1 = uniform();
  double u2 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_ = r * std::sin(theta);
  have_cached_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

}  // namespace rat::util
