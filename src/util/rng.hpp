// Deterministic, seedable random number generation for workload synthesis.
//
// Every experiment in this repository must be exactly reproducible from a
// seed, so we carry our own small generator (SplitMix64) instead of relying
// on unspecified standard-library distributions.
#pragma once

#include <cstdint>

namespace rat::util {

/// SplitMix64 PRNG. Tiny state, passes BigCrush, and its output stream is
/// fully specified — identical across compilers and platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). @p n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box–Muller (deterministic; one cached value).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

 private:
  std::uint64_t state_;
  bool have_cached_ = false;
  double cached_ = 0.0;
};

}  // namespace rat::util
