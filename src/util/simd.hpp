// Portable, width-agnostic SIMD lanes for the batch evaluation kernel.
//
// One vector-of-double type per build configuration:
//
//   * ScalarLane  — width 1, plain double. Always available; also the tail
//     lane for ranges that are not a multiple of the native width.
//   * NativeLane  — the widest backend selected at build time by the
//     RAT_SIMD CMake option: AVX2 (4 doubles, RAT_SIMD_AVX2), NEON
//     (2 doubles, RAT_SIMD_NEON), or an alias of ScalarLane when neither
//     macro is defined (RAT_SIMD=off/scalar, or unsupported hosts).
//
// The contract every backend must honour (docs/VECTORIZATION.md): each
// lane performs exactly the IEEE-754 binary64 operations +, -, *, /, max
// with round-to-nearest-even, one rounding per operation. vaddpd/vmulpd/
// vdivpd/vmaxpd and the NEON equivalents are exactly-rounded lane-wise, so
// a kernel written against this wrapper produces bit-identical results at
// any width — which is what lets predict_batch swap lanes freely while
// keeping the repo-wide byte-identity guarantees. Consequently there is
// deliberately NO fma() here: contraction would skip an intermediate
// rounding and break scalar/SIMD identity.
//
// max() note: both operands in the throughput kernel are finite (validated
// inputs), so the x86 "second operand on NaN" asymmetry never matters; the
// scalar backend still mirrors std::max's (a < b ? b : a) selection.
#pragma once

#include <cstddef>

#if defined(RAT_SIMD_AVX2)
#include <immintrin.h>
#elif defined(RAT_SIMD_NEON)
#include <arm_neon.h>
#endif

namespace rat::util::simd {

/// Width-1 lane: the reference semantics every wider backend must match.
struct ScalarLane {
  static constexpr std::size_t kWidth = 1;
  double v;

  static ScalarLane load(const double* p) { return {*p}; }
  static ScalarLane broadcast(double x) { return {x}; }
  void store(double* p) const { *p = v; }

  friend ScalarLane operator+(ScalarLane a, ScalarLane b) {
    return {a.v + b.v};
  }
  friend ScalarLane operator-(ScalarLane a, ScalarLane b) {
    return {a.v - b.v};
  }
  friend ScalarLane operator*(ScalarLane a, ScalarLane b) {
    return {a.v * b.v};
  }
  friend ScalarLane operator/(ScalarLane a, ScalarLane b) {
    return {a.v / b.v};
  }
  friend ScalarLane max(ScalarLane a, ScalarLane b) {
    return {a.v < b.v ? b.v : a.v};
  }
};

#if defined(RAT_SIMD_AVX2)

/// Four doubles per op via AVX vaddpd/vsubpd/vmulpd/vdivpd/vmaxpd — each
/// exactly rounded per lane, so results are bit-identical to ScalarLane.
struct Avx2Lane {
  static constexpr std::size_t kWidth = 4;
  __m256d v;

  static Avx2Lane load(const double* p) { return {_mm256_loadu_pd(p)}; }
  static Avx2Lane broadcast(double x) { return {_mm256_set1_pd(x)}; }
  void store(double* p) const { _mm256_storeu_pd(p, v); }

  friend Avx2Lane operator+(Avx2Lane a, Avx2Lane b) {
    return {_mm256_add_pd(a.v, b.v)};
  }
  friend Avx2Lane operator-(Avx2Lane a, Avx2Lane b) {
    return {_mm256_sub_pd(a.v, b.v)};
  }
  friend Avx2Lane operator*(Avx2Lane a, Avx2Lane b) {
    return {_mm256_mul_pd(a.v, b.v)};
  }
  friend Avx2Lane operator/(Avx2Lane a, Avx2Lane b) {
    return {_mm256_div_pd(a.v, b.v)};
  }
  friend Avx2Lane max(Avx2Lane a, Avx2Lane b) {
    return {_mm256_max_pd(a.v, b.v)};
  }
};

using NativeLane = Avx2Lane;
// Internal linkage on purpose: TUs are compiled with different RAT_SIMD_*
// macros (only batch.cpp gets the vector flags), so an inline variable
// here would be an ODR violation.
constexpr const char* kBackendName = "avx2";

#elif defined(RAT_SIMD_NEON)

/// Two doubles per op via NEON vaddq/vsubq/vmulq/vdivq/vmaxq_f64; like
/// AVX2, every op is exactly rounded per lane.
struct NeonLane {
  static constexpr std::size_t kWidth = 2;
  float64x2_t v;

  static NeonLane load(const double* p) { return {vld1q_f64(p)}; }
  static NeonLane broadcast(double x) { return {vdupq_n_f64(x)}; }
  void store(double* p) const { vst1q_f64(p, v); }

  friend NeonLane operator+(NeonLane a, NeonLane b) {
    return {vaddq_f64(a.v, b.v)};
  }
  friend NeonLane operator-(NeonLane a, NeonLane b) {
    return {vsubq_f64(a.v, b.v)};
  }
  friend NeonLane operator*(NeonLane a, NeonLane b) {
    return {vmulq_f64(a.v, b.v)};
  }
  friend NeonLane operator/(NeonLane a, NeonLane b) {
    return {vdivq_f64(a.v, b.v)};
  }
  friend NeonLane max(NeonLane a, NeonLane b) {
    return {vmaxq_f64(a.v, b.v)};
  }
};

using NativeLane = NeonLane;
constexpr const char* kBackendName = "neon";

#else

using NativeLane = ScalarLane;
constexpr const char* kBackendName = "scalar";

#endif

}  // namespace rat::util::simd
