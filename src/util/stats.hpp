// Small statistics helpers for validation (predicted-vs-actual comparisons)
// and for workload/error analysis.
#pragma once

#include <cstddef>
#include <span>

namespace rat::util {

/// Online mean/variance accumulator (Welford). Numerically stable for the
/// long error-sample streams produced by the precision sweeps.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

double mean(std::span<const double> xs);
double stddev(std::span<const double> xs);
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// Signed percent error of @p actual relative to @p expected, in percent
/// units (predicted 10.6 vs actual 7.8 -> ~ -26.4).
double percent_error(double expected, double actual);

/// |log10(actual/expected)| < 1, i.e. "same order of magnitude" as the paper
/// uses the phrase when judging the MD prediction.
bool same_order_of_magnitude(double expected, double actual);

/// Root-mean-square error between two equal-length sequences.
double rmse(std::span<const double> a, std::span<const double> b);

/// Maximum absolute elementwise difference.
double max_abs_diff(std::span<const double> a, std::span<const double> b);

}  // namespace rat::util
