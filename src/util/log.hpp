// Leveled logging to stderr. Intentionally tiny: the library itself never
// logs on hot paths; logging exists for the examples, benches and the
// methodology trace.
#pragma once

#include <sstream>
#include <string>

namespace rat::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are discarded. Default: kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit a single log line ("[warn] message") to stderr when enabled.
void log(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  log(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  log(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  log(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(Args&&... args) {
  log(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace rat::util
