#include "util/thread_pool.hpp"

#include <cstdlib>
#include <stdexcept>

namespace rat::util {

namespace {
thread_local bool tls_pool_worker = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0)
    throw std::invalid_argument("ThreadPool: n_threads == 0");
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (!task) throw std::invalid_argument("ThreadPool::submit: empty task");
  {
    std::lock_guard lock(mu_);
    if (stop_)
      throw std::logic_error("ThreadPool::submit: pool is shutting down");
    queue_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  tls_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and everything drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

bool ThreadPool::on_worker_thread() { return tls_pool_worker; }

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(default_thread_count());
  return pool;
}

std::size_t default_thread_count() {
  if (const char* env = std::getenv("RAT_THREADS")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 256)
      return static_cast<std::size_t>(v);
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 1 ? static_cast<std::size_t>(hc) : 1;
}

}  // namespace rat::util
