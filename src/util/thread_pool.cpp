#include "util/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"

namespace rat::util {

namespace {
thread_local bool tls_pool_worker = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0)
    throw std::invalid_argument("ThreadPool: n_threads == 0");
  if (obs::enabled())
    obs::Registry::global().set_gauge("pool.threads",
                                      static_cast<double>(n_threads));
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (!task) throw std::invalid_argument("ThreadPool::submit: empty task");
  // Metrics wrap: queue wait (submit -> start) and run duration per task.
  // Decided per submission so tasks enqueued while metrics are off stay
  // unwrapped — the disabled path pays exactly this one branch.
  if (obs::enabled()) {
    task = [inner = std::move(task), submitted = obs::now_ns()] {
      obs::Registry& reg = obs::Registry::global();
      const std::uint64_t started = obs::now_ns();
      reg.record_timer("pool.task_wait", started - submitted);
      inner();
      reg.record_timer("pool.task", obs::now_ns() - started);
      reg.add_counter("pool.tasks_completed");
    };
  }
  std::size_t depth;
  {
    std::lock_guard lock(mu_);
    if (stop_)
      throw std::logic_error("ThreadPool::submit: pool is shutting down");
    queue_.push(std::move(task));
    depth = queue_.size();
  }
  cv_.notify_one();
  if (obs::enabled()) {
    obs::Registry& reg = obs::Registry::global();
    reg.add_counter("pool.tasks_submitted");
    reg.max_gauge("pool.queue_depth_max", static_cast<double>(depth));
  }
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  tls_pool_worker = true;
  const std::string task_counter =
      "pool.worker." + std::to_string(worker_index) + ".tasks";
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and everything drained
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    task();
    if (obs::enabled()) obs::Registry::global().add_counter(task_counter);
    {
      std::lock_guard lock(mu_);
      if (--active_ == 0 && queue_.empty()) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [this] { return active_ == 0 && queue_.empty(); });
}

bool ThreadPool::on_worker_thread() { return tls_pool_worker; }

namespace {
std::atomic<ThreadPool*> g_shared{nullptr};
}  // namespace

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(default_thread_count());
  g_shared.store(&pool, std::memory_order_release);
  return pool;
}

ThreadPool* ThreadPool::shared_if_created() {
  return g_shared.load(std::memory_order_acquire);
}

std::size_t default_thread_count() {
  if (const char* env = std::getenv("RAT_THREADS")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 256)
      return static_cast<std::size_t>(v);
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 1 ? static_cast<std::size_t>(hc) : 1;
}

}  // namespace rat::util
