#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/format.hpp"

namespace rat::util {

std::string ascii_histogram(std::span<const double> values,
                            const HistogramOptions& options) {
  if (values.empty())
    throw std::invalid_argument("ascii_histogram: no values");
  if (options.n_bins == 0 || options.max_bar_width == 0)
    throw std::invalid_argument("ascii_histogram: zero bins or width");

  double lo = options.lo, hi = options.hi;
  if (!(lo < hi)) {
    lo = *std::min_element(values.begin(), values.end());
    hi = *std::max_element(values.begin(), values.end());
    if (lo == hi) hi = lo + 1.0;  // degenerate: single-valued data
  }

  std::vector<std::size_t> counts(options.n_bins, 0);
  for (double v : values) {
    const double pos = (v - lo) / (hi - lo);
    const auto bin = static_cast<std::size_t>(
        std::clamp(pos * static_cast<double>(options.n_bins), 0.0,
                   static_cast<double>(options.n_bins) - 1.0));
    ++counts[bin];
  }
  const std::size_t peak = *std::max_element(counts.begin(), counts.end());

  std::ostringstream os;
  for (std::size_t b = 0; b < options.n_bins; ++b) {
    const double b_lo = lo + (hi - lo) * static_cast<double>(b) /
                                 static_cast<double>(options.n_bins);
    const double b_hi = lo + (hi - lo) * static_cast<double>(b + 1) /
                                 static_cast<double>(options.n_bins);
    const std::size_t bar =
        peak ? counts[b] * options.max_bar_width / peak : 0;
    os << pad_left(fixed(b_lo, 2), 9) << " .. " << pad_left(fixed(b_hi, 2), 9)
       << " |" << std::string(bar, '#') << ' ' << counts[b] << '\n';
  }
  return os.str();
}

}  // namespace rat::util
