#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/format.hpp"

namespace rat::util {

std::string ascii_histogram(std::span<const double> values,
                            const HistogramOptions& options) {
  if (values.empty())
    throw std::invalid_argument("ascii_histogram: no values");
  if (options.n_bins == 0 || options.max_bar_width == 0)
    throw std::invalid_argument("ascii_histogram: zero bins or width");

  // NaN/Inf cannot be binned: casting a NaN bin position to size_t is
  // undefined behaviour and +-Inf would swallow the data range. Skip them
  // up front, count them, and annotate the rendering; all-non-finite
  // input is rejected like empty input.
  std::size_t dropped = 0;
  double data_lo = 0.0, data_hi = 0.0;
  bool have_finite = false;
  for (double v : values) {
    if (!std::isfinite(v)) {
      ++dropped;
      continue;
    }
    if (!have_finite) {
      data_lo = data_hi = v;
      have_finite = true;
    } else {
      data_lo = std::min(data_lo, v);
      data_hi = std::max(data_hi, v);
    }
  }
  if (!have_finite)
    throw std::invalid_argument("ascii_histogram: no finite values");

  double lo = options.lo, hi = options.hi;
  if (!(lo < hi)) {
    lo = data_lo;
    hi = data_hi;
    if (lo == hi) hi = lo + 1.0;  // degenerate: single-valued data
  }

  std::vector<std::size_t> counts(options.n_bins, 0);
  for (double v : values) {
    if (!std::isfinite(v)) continue;
    const double pos = (v - lo) / (hi - lo);
    const auto bin = static_cast<std::size_t>(
        std::clamp(pos * static_cast<double>(options.n_bins), 0.0,
                   static_cast<double>(options.n_bins) - 1.0));
    ++counts[bin];
  }
  const std::size_t peak = *std::max_element(counts.begin(), counts.end());

  std::ostringstream os;
  for (std::size_t b = 0; b < options.n_bins; ++b) {
    const double b_lo = lo + (hi - lo) * static_cast<double>(b) /
                                 static_cast<double>(options.n_bins);
    const double b_hi = lo + (hi - lo) * static_cast<double>(b + 1) /
                                 static_cast<double>(options.n_bins);
    const std::size_t bar =
        peak ? counts[b] * options.max_bar_width / peak : 0;
    os << pad_left(fixed(b_lo, 2), 9) << " .. " << pad_left(fixed(b_hi, 2), 9)
       << " |" << std::string(bar, '#') << ' ' << counts[b] << '\n';
  }
  if (dropped > 0)
    os << "(dropped " << dropped << " non-finite value"
       << (dropped == 1 ? "" : "s") << ")\n";
  return os.str();
}

}  // namespace rat::util
