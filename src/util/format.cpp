#include "util/format.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace rat::util {

std::string sci(double value, int sig_figs) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buf[64];
  // %E gives "5.56E-06"; strip the leading zero of the exponent and any '+'.
  std::snprintf(buf, sizeof(buf), "%.*E", std::max(0, sig_figs - 1), value);
  std::string s(buf);
  auto epos = s.find('E');
  if (epos == std::string::npos) return s;
  std::string mantissa = s.substr(0, epos);
  std::string exp = s.substr(epos + 1);
  bool neg = false;
  if (!exp.empty() && (exp[0] == '+' || exp[0] == '-')) {
    neg = exp[0] == '-';
    exp.erase(0, 1);
  }
  while (exp.size() > 1 && exp[0] == '0') exp.erase(0, 1);
  return mantissa + "E" + (neg ? "-" : "") + exp;
}

std::string percent(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string bytes(double n) {
  static const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (std::fabs(n) >= 1024.0 && u < 4) {
    n /= 1024.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f %s", n, units[u]);
  return buf;
}

std::string si(double value, const std::string& unit) {
  static const char* prefixes[] = {"", "K", "M", "G", "T"};
  int p = 0;
  while (std::fabs(value) >= 1000.0 && p < 4) {
    value /= 1000.0;
    ++p;
  }
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%g %s%s", value, prefixes[p], unit.c_str());
  return buf;
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

bool approx_equal(double a, double b, double rel_tol) {
  const double scale = std::max({std::fabs(a), std::fabs(b), 1e-300});
  return std::fabs(a - b) <= rel_tol * scale;
}

}  // namespace rat::util
