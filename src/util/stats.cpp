#include "util/stats.hpp"

#include <cmath>
#include <stdexcept>

namespace rat::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double stddev(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.stddev();
}

double min_of(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  if (!s.count()) throw std::invalid_argument("min_of: empty");
  return s.min();
}

double max_of(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  if (!s.count()) throw std::invalid_argument("max_of: empty");
  return s.max();
}

double percent_error(double expected, double actual) {
  if (expected == 0.0) throw std::invalid_argument("percent_error: expected=0");
  return (actual - expected) / expected * 100.0;
}

bool same_order_of_magnitude(double expected, double actual) {
  if (expected <= 0.0 || actual <= 0.0) return false;
  return std::fabs(std::log10(actual / expected)) < 1.0;
}

double rmse(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.empty())
    throw std::invalid_argument("rmse: size mismatch or empty");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(a.size()));
}

double max_abs_diff(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.empty())
    throw std::invalid_argument("max_abs_diff: size mismatch or empty");
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::fmax(m, std::fabs(a[i] - b[i]));
  return m;
}

}  // namespace rat::util
