// ASCII histograms for terminal reports (Monte-Carlo speedup bands,
// microbenchmark distributions).
#pragma once

#include <span>
#include <string>

namespace rat::util {

struct HistogramOptions {
  std::size_t n_bins = 20;
  std::size_t max_bar_width = 50;
  /// Optional fixed range; when lo >= hi the data range is used.
  double lo = 0.0;
  double hi = 0.0;
};

/// Render a histogram of @p values, one "lo..hi | ####### count" line per
/// bin. Non-finite values (NaN, +-Inf) cannot be binned; they are skipped
/// and reported in a trailing "(dropped N non-finite values)" line.
/// Throws std::invalid_argument on empty input, zero bins, or input with
/// no finite values at all.
std::string ascii_histogram(std::span<const double> values,
                            const HistogramOptions& options = {});

}  // namespace rat::util
