// Minimal column-oriented table renderer.
//
// The RAT worksheet (paper Tables 2/3/5/6/8/9) is fundamentally a small
// table of labelled values; this class renders those in three formats:
// ASCII (for terminals), Markdown (for EXPERIMENTS.md) and CSV (for
// downstream plotting).
#pragma once

#include <string>
#include <vector>

namespace rat::util {

class Table {
 public:
  /// Create a table with one header cell per column.
  explicit Table(std::vector<std::string> headers);

  /// Append a data row; must have exactly as many cells as there are
  /// columns (checked, throws std::invalid_argument otherwise).
  void add_row(std::vector<std::string> cells);

  /// Append a visual separator row (rendered as a rule in ASCII output).
  void add_separator();

  std::size_t num_columns() const { return headers_.size(); }
  std::size_t num_rows() const;

  /// Cell accessor for tests; row indexes data rows only (separators skipped).
  const std::string& cell(std::size_t row, std::size_t col) const;

  std::string to_ascii() const;
  std::string to_markdown() const;
  std::string to_csv() const;

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };
  std::vector<std::size_t> column_widths() const;

  std::vector<std::string> headers_;
  std::vector<Row> rows_;
};

}  // namespace rat::util
