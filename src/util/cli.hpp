// Minimal command-line flag parser for the example/bench executables.
//
// Accepts "--key=value" and "--flag" forms; anything else is a positional
// argument. Unknown keys are kept so callers can report them.
#pragma once

#include <cstddef>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace rat::util {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

  bool has(const std::string& key) const;

  /// String value of --key=value, or nullopt when absent.
  std::optional<std::string> get(const std::string& key) const;

  std::string get_or(const std::string& key, const std::string& fallback) const;
  double get_double(const std::string& key, double fallback) const;
  long long get_int(const std::string& key, long long fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Non-negative integer flag with range validation: throws when the value
  /// is not an unsigned integer or lies outside [min_value, max_value].
  /// The fallback is returned as-is when the flag is absent.
  std::size_t get_size_t(
      const std::string& key, std::size_t fallback, std::size_t min_value = 0,
      std::size_t max_value = std::numeric_limits<std::size_t>::max()) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// All parsed --keys, for "unknown flag" diagnostics.
  std::vector<std::string> keys() const;

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace rat::util
