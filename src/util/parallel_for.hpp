// Chunked parallel iteration over an index range, on the shared pool.
//
// parallel_for(n, fn) applies fn(i) for i in [0, n), splitting the range
// into one contiguous chunk per thread. The calling thread runs chunk 0
// itself (so a busy pool can never stall a region completely) and waits
// for the rest. Guarantees:
//
//   * every index runs exactly once, whatever the thread count;
//   * exceptions propagate: the exception from the lowest-numbered failing
//     chunk is rethrown on the caller, so a failing run throws the same
//     error no matter how chunks interleave (other chunks still complete);
//   * serial fallback when the resolved thread count is 1, n <= 1, or the
//     caller is itself a pool worker (nested regions never deadlock);
//   * a requested thread count of 0 means default_thread_count(), i.e. the
//     RAT_THREADS override or hardware_concurrency.
//
// parallel_map(n, fn) is the ordered-results variant: out[i] = fn(i), with
// the output vector indexed exactly like the serial loop would fill it.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace rat::util {

/// Threads a parallel region will actually target for a requested count:
/// 0 resolves to default_thread_count(), anything else is taken as given.
inline std::size_t resolve_thread_count(std::size_t requested) {
  return requested == 0 ? default_thread_count() : requested;
}

namespace detail {

/// Completion latch + first-error capture for one parallel region.
struct ParallelRegion {
  std::mutex mu;
  std::condition_variable done_cv;
  std::size_t pending = 0;
  std::size_t error_chunk = static_cast<std::size_t>(-1);
  std::exception_ptr error;

  void record_error(std::size_t chunk, std::exception_ptr e) {
    std::lock_guard lock(mu);
    if (chunk < error_chunk) {
      error_chunk = chunk;
      error = std::move(e);
    }
  }

  void finish_one() {
    std::lock_guard lock(mu);
    if (--pending == 0) done_cv.notify_all();
  }

  void wait_and_rethrow() {
    std::unique_lock lock(mu);
    done_cv.wait(lock, [this] { return pending == 0; });
    if (error) std::rethrow_exception(error);
  }
};

}  // namespace detail

template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn, std::size_t n_threads = 0) {
  if (n == 0) return;
  const std::size_t threads = std::min(resolve_thread_count(n_threads), n);
  if (threads <= 1 || ThreadPool::on_worker_thread()) {
    // Serial fallback: the whole range is one chunk for metrics purposes.
    obs::ScopedTimer timer("parallel_for.chunk");
    if (obs::enabled())
      obs::Registry::global().add_counter("parallel_for.serial_regions");
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  if (obs::enabled()) {
    obs::Registry& reg = obs::Registry::global();
    reg.add_counter("parallel_for.regions");
    reg.add_counter("parallel_for.chunks", threads);
  }
  detail::ParallelRegion region;
  region.pending = threads;
  const std::size_t chunk = (n + threads - 1) / threads;
  auto run_chunk = [&region, &fn, n, chunk](std::size_t c) {
    try {
      obs::ScopedTimer timer("parallel_for.chunk");
      const std::size_t lo = c * chunk;
      const std::size_t hi = std::min(n, lo + chunk);
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    } catch (...) {
      region.record_error(c, std::current_exception());
    }
    region.finish_one();
  };

  ThreadPool& pool = ThreadPool::shared();
  // The region outlives every chunk (wait_and_rethrow below), so the tasks
  // may capture run_chunk by reference.
  for (std::size_t c = 1; c < threads; ++c)
    pool.submit([&run_chunk, c] { run_chunk(c); });
  run_chunk(0);
  region.wait_and_rethrow();
}

/// out[i] = fn(i) for i in [0, n), in index order. The element type must be
/// default-constructible (slots are filled in place by the chunks).
template <typename Fn>
auto parallel_map(std::size_t n, Fn&& fn, std::size_t n_threads = 0) {
  using T = std::decay_t<decltype(fn(std::size_t{0}))>;
  std::vector<T> out(n);
  parallel_for(
      n, [&out, &fn](std::size_t i) { out[i] = fn(i); }, n_threads);
  return out;
}

}  // namespace rat::util
