// Fixed-size worker pool shared by every parallel region in the library.
//
// The explorer's hot loops (design-space evaluation, Monte-Carlo sampling,
// sensitivity sweeps, precision searches) are embarrassingly parallel, so a
// single process-wide pool is enough: callers describe *what* to split via
// parallel_for / parallel_map (see util/parallel_for.hpp) and this class
// only runs opaque tasks. Tasks must not throw — parallel_for wraps user
// callables and captures exceptions itself.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rat::util {

class ThreadPool {
 public:
  /// Spins up @p n_threads workers immediately. Throws when n_threads == 0.
  explicit ThreadPool(std::size_t n_threads);

  /// Drains nothing: joins after finishing every task already submitted.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue one task. Tasks run in submission order (single FIFO queue)
  /// on whichever worker frees up first, and must not throw.
  void submit(std::function<void()> task);

  /// Block until the queue is empty and no task — including its metrics
  /// bookkeeping, which runs after the task's own completion signal — is
  /// still executing on a worker. Callers exporting metrics use this so
  /// trailing pool counters cannot be lost to a worker that hasn't been
  /// rescheduled yet. Must not be called from a worker thread.
  void wait_idle();

  /// True when the calling thread is one of *any* pool's workers. Parallel
  /// regions use this to fall back to serial execution instead of
  /// deadlocking on nested fan-out.
  static bool on_worker_thread();

  /// The process-wide pool, created on first use with
  /// default_thread_count() workers.
  static ThreadPool& shared();

  /// The process-wide pool if shared() has ever been called, else nullptr
  /// — lets exporters quiesce the pool without instantiating one.
  static ThreadPool* shared_if_created();

 private:
  void worker_loop(std::size_t worker_index);

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::queue<std::function<void()>> queue_;
  std::size_t active_ = 0;  ///< tasks currently running on workers
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Thread count used when a caller passes 0 ("auto"): the RAT_THREADS
/// environment variable when set to an integer in [1, 256] (malformed
/// values are ignored), else std::thread::hardware_concurrency(), and at
/// least 1 either way.
std::size_t default_thread_count();

}  // namespace rat::util
