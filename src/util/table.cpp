#include "util/table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/format.hpp"

namespace rat::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no columns");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("Table: row width mismatch");
  rows_.push_back(Row{false, std::move(cells)});
}

void Table::add_separator() { rows_.push_back(Row{true, {}}); }

std::size_t Table::num_rows() const {
  std::size_t n = 0;
  for (const auto& r : rows_)
    if (!r.separator) ++n;
  return n;
}

const std::string& Table::cell(std::size_t row, std::size_t col) const {
  std::size_t n = 0;
  for (const auto& r : rows_) {
    if (r.separator) continue;
    if (n == row) return r.cells.at(col);
    ++n;
  }
  throw std::out_of_range("Table::cell");
}

std::vector<std::size_t> Table::column_widths() const {
  std::vector<std::size_t> w(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) w[c] = headers_[c].size();
  for (const auto& r : rows_) {
    if (r.separator) continue;
    for (std::size_t c = 0; c < r.cells.size(); ++c)
      w[c] = std::max(w[c], r.cells[c].size());
  }
  return w;
}

std::string Table::to_ascii() const {
  const auto w = column_widths();
  std::ostringstream os;
  auto rule = [&] {
    for (std::size_t c = 0; c < w.size(); ++c)
      os << '+' << std::string(w[c] + 2, '-');
    os << "+\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < w.size(); ++c)
      os << "| " << pad_right(c < cells.size() ? cells[c] : "", w[c]) << ' ';
    os << "|\n";
  };
  rule();
  line(headers_);
  rule();
  for (const auto& r : rows_) {
    if (r.separator)
      rule();
    else
      line(r.cells);
  }
  rule();
  return os.str();
}

std::string Table::to_markdown() const {
  std::ostringstream os;
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c)
      os << ' ' << (c < cells.size() ? cells[c] : "") << " |";
    os << '\n';
  };
  line(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) os << "---|";
  os << '\n';
  for (const auto& r : rows_)
    if (!r.separator) line(r.cells);
  return os.str();
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& s) {
    // RFC 4180: quote any field containing a comma, quote, LF *or CR* —
    // a bare '\r' (worksheet paths or diagnostics from CRLF sources) used
    // to pass through unquoted and corrupt the row structure for readers
    // that accept either line ending.
    if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c) os << ',';
      os << escape(c < cells.size() ? cells[c] : "");
    }
    os << '\n';
  };
  line(headers_);
  for (const auto& r : rows_)
    if (!r.separator) line(r.cells);
  return os.str();
}

}  // namespace rat::util
