#include "load/schedule.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace rat::load {

std::optional<Arrival> parse_arrival(std::string_view name) {
  if (name == "constant") return Arrival::kConstant;
  if (name == "poisson") return Arrival::kPoisson;
  return std::nullopt;
}

const char* arrival_name(Arrival kind) {
  switch (kind) {
    case Arrival::kConstant: return "constant";
    case Arrival::kPoisson: return "poisson";
  }
  return "constant";
}

std::vector<std::uint64_t> build_schedule(Arrival kind, double rate_hz,
                                          std::size_t count,
                                          std::uint64_t seed) {
  if (!(rate_hz > 0.0))
    throw std::invalid_argument("build_schedule: rate_hz must be > 0");
  std::vector<std::uint64_t> offsets;
  offsets.reserve(count);
  if (count == 0) return offsets;

  constexpr double kNsPerSec = 1e9;
  switch (kind) {
    case Arrival::kConstant:
      for (std::size_t i = 0; i < count; ++i)
        offsets.push_back(static_cast<std::uint64_t>(
            std::llround(static_cast<double>(i) * kNsPerSec / rate_hz)));
      break;
    case Arrival::kPoisson: {
      // First arrival at t=0 so every schedule starts immediately; the
      // remaining gaps are exponential with mean 1/rate. uniform() is in
      // [0, 1), so 1-u is in (0, 1] and the log is finite.
      util::Rng rng(seed);
      double t_ns = 0.0;
      offsets.push_back(0);
      for (std::size_t i = 1; i < count; ++i) {
        const double gap_sec = -std::log(1.0 - rng.uniform()) / rate_hz;
        t_ns += gap_sec * kNsPerSec;
        offsets.push_back(static_cast<std::uint64_t>(std::llround(t_ns)));
      }
      break;
    }
  }
  return offsets;
}

}  // namespace rat::load
