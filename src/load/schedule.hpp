// Deterministic open-loop arrival schedules for the load generator.
//
// An open-loop generator decides *when* every request is sent before the
// run starts: the schedule is a precomputed, non-decreasing list of send
// offsets (nanoseconds from run start), and the runner injects request i
// at t0 + offsets[i] no matter how far behind the server is. Closed-loop
// harnesses (send, wait, send) silently stretch their inter-arrival gaps
// whenever the server stalls, which is exactly the coordinated-omission
// bug that makes tail latencies look fine while clients are queueing;
// a fixed schedule plus latencies measured from the *scheduled* send
// time makes stalls show up in p99 where they belong (docs/LOADGEN.md).
//
// Schedules are pure functions of (kind, rate, count, seed) built on
// util::Rng (SplitMix64), so the same flags replay byte-identical
// traffic on any platform.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace rat::load {

/// Inter-arrival process shape.
enum class Arrival {
  kConstant,  ///< evenly spaced: offsets[i] = i / rate
  kPoisson,   ///< exponential gaps: memoryless bursts at the same mean rate
};

/// "constant" / "poisson" -> Arrival; nullopt for anything else.
std::optional<Arrival> parse_arrival(std::string_view name);
const char* arrival_name(Arrival kind);

/// Send offsets in nanoseconds from run start: @p count values,
/// non-decreasing, offsets[0] == 0, mean rate @p rate_hz (> 0). The
/// @p seed only matters for Poisson schedules.
std::vector<std::uint64_t> build_schedule(Arrival kind, double rate_hz,
                                          std::size_t count,
                                          std::uint64_t seed);

}  // namespace rat::load
