// Request mixes: the worksheet payloads a load run replays.
//
// A Mix holds base worksheets (typically tests/fixtures/worksheets/*.rat
// loaded in sorted-name order, so runs are reproducible across
// filesystems) and hands out one payload per request. The duplicate
// ratio controls how cacheable the traffic is: a duplicate repeats a
// base worksheet byte-for-byte (same rat.fp.v1 fingerprint, so
// rat_serve's result cache and rat_router's fingerprint sharding see
// repeat traffic), while a unique payload perturbs tsoft_sec by a
// counter-scaled 1e-9 relative nudge and re-serializes — a distinct
// canonical text and fingerprint that still parses and evaluates like
// the base. Payload choice draws from the caller's Rng, so a (seed,
// fixture set, ratio) triple fully determines the request stream.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace rat::load {

class Mix {
 public:
  /// All "*.rat" files under @p dir, sorted by filename. Throws
  /// std::runtime_error when the directory has none or a file cannot
  /// be read.
  static Mix from_fixture_dir(const std::filesystem::path& dir);

  void add(std::string name, std::string worksheet);

  std::size_t size() const { return entries_.size(); }
  const std::string& name(std::size_t i) const { return entries_[i].name; }

  /// Payload for the next request: a base worksheet verbatim with
  /// probability @p duplicate_ratio (clamped to [0, 1]), otherwise a
  /// never-repeated unique variant of a base.
  std::string next(util::Rng& rng, double duplicate_ratio);

 private:
  struct Entry {
    std::string name;
    std::string worksheet;
  };

  std::string unique_variant(const Entry& base);

  std::vector<Entry> entries_;
  std::uint64_t variant_seq_ = 0;
};

}  // namespace rat::load
