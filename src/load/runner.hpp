// Open-loop load runner: replays a scheduled request stream against one
// rat.svc.v1 TCP endpoint (rat_serve or rat_router — the protocol is the
// same) and measures the latency distribution the *clients* saw.
//
// The runner multiplexes every simulated client on one poll(2) loop with
// non-blocking sockets (the svc/fdio.hpp discipline): request i is
// enqueued on connection i % connections at exactly t0 + offsets[i],
// whether or not earlier responses have arrived, and its latency is
// measured from that scheduled send time — not from when write(2)
// happened to drain — so server stalls surface as tail latency instead
// of being absorbed by a waiting client (coordinated omission; see
// docs/LOADGEN.md). Responses correlate back to requests by the echoed
// "r<i>" id, so pipelining and out-of-order completion are fine.
//
// A StepResult carries exact counts (ok / per-E_* errors / lost /
// connection drops) and an obs::LogHistogram of latencies; sweep runs
// concatenate StepResults into one rat.load.v1 report mapping the
// throughput-latency frontier. SLO gates (p99, error rate) evaluate per
// step so CI can fail a serving regression.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "load/mix.hpp"
#include "load/schedule.hpp"
#include "obs/histogram.hpp"

namespace rat::load {

struct RunConfig {
  std::string host = "127.0.0.1";
  int port = 0;
  std::size_t connections = 64;   ///< simulated clients
  std::size_t requests = 1000;    ///< per step
  Arrival arrival = Arrival::kConstant;
  double rate_hz = 500.0;         ///< offered arrival rate
  std::uint64_t seed = 1;         ///< schedule + payload stream seed
  double duplicate_ratio = 0.5;   ///< fraction replaying a base verbatim
  double deadline_ms = 0.0;       ///< forwarded per request when > 0
  bool no_cache = false;          ///< bypass the server result cache
  double timeout_sec = 30.0;      ///< give up this long after the last send
};

/// Measured outcome of one run (one sweep step).
struct StepResult {
  double offered_rate_hz = 0.0;
  double achieved_rate_hz = 0.0;  ///< responses / wall duration
  double duration_sec = 0.0;      ///< first scheduled send -> loop exit
  std::uint64_t sent = 0;         ///< enqueued on a live connection
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;       ///< error responses (see error_codes)
  std::uint64_t lost = 0;         ///< never answered: dead conn or cutoff
  std::uint64_t connection_drops = 0;
  bool timed_out = false;         ///< hit the give-up cutoff
  std::map<std::string, std::uint64_t> error_codes;  ///< E_* -> count
  obs::LogHistogram latency;      ///< ns, scheduled send -> response
};

/// SLO gate; fields at their defaults are unchecked.
struct SloConfig {
  double p99_ms = 0.0;       ///< checked when > 0
  double error_rate = -1.0;  ///< (errors+lost)/scheduled, checked when >= 0
};

/// Human-readable violation messages; empty means the step passes.
std::vector<std::string> slo_violations(const StepResult& step,
                                        const SloConfig& slo);

/// Execute one open-loop step against host:port. Throws
/// std::runtime_error when the endpoint cannot be reached at all.
StepResult run_step(const RunConfig& config, Mix& mix);

/// The rat.load.v1 JSON document (schema in docs/LOADGEN.md): config,
/// one entry per step, and the SLO verdict.
std::string load_report_json(const RunConfig& config,
                             const std::vector<StepResult>& steps,
                             const SloConfig& slo,
                             const std::vector<std::string>& violations);

}  // namespace rat::load
