#include "load/mix.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/parameters.hpp"

namespace rat::load {

Mix Mix::from_fixture_dir(const std::filesystem::path& dir) {
  std::error_code ec;
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".rat")
      files.push_back(entry.path());
  }
  if (ec)
    throw std::runtime_error("Mix: cannot read fixture dir " + dir.string() +
                             ": " + ec.message());
  std::sort(files.begin(), files.end());

  Mix mix;
  for (const auto& path : files) {
    std::ifstream f(path);
    if (!f)
      throw std::runtime_error("Mix: cannot open " + path.string());
    std::ostringstream text;
    text << f.rdbuf();
    mix.add(path.filename().string(), text.str());
  }
  if (mix.size() == 0)
    throw std::runtime_error("Mix: no *.rat worksheets in " + dir.string());
  return mix;
}

void Mix::add(std::string name, std::string worksheet) {
  entries_.push_back(Entry{std::move(name), std::move(worksheet)});
}

std::string Mix::next(util::Rng& rng, double duplicate_ratio) {
  if (entries_.empty()) throw std::runtime_error("Mix: empty");
  if (duplicate_ratio < 0.0) duplicate_ratio = 0.0;
  if (duplicate_ratio > 1.0) duplicate_ratio = 1.0;
  // Draw the duplicate/unique coin before picking the base so the base
  // choice consumes the same number of Rng values either way.
  const bool duplicate = rng.uniform() < duplicate_ratio;
  const Entry& base = entries_[rng.uniform_index(entries_.size())];
  if (duplicate) return base.worksheet;
  return unique_variant(base);
}

std::string Mix::unique_variant(const Entry& base) {
  const std::uint64_t seq = ++variant_seq_;
  try {
    // Perturb tsoft_sec by a counter-scaled relative nudge far below any
    // physically meaningful digit, then re-serialize: the canonical text
    // (and so its rat.fp.v1 fingerprint) is unique, but the worksheet
    // still parses and evaluates like the base.
    core::RatInputs inputs = core::RatInputs::parse(base.worksheet);
    inputs.software.tsoft_sec *=
        1.0 + 1e-9 * static_cast<double>(1 + seq % 1000000);
    inputs.name += "-v" + std::to_string(seq);
    return inputs.serialize();
  } catch (const std::exception&) {
    // Unparseable base (deliberately broken fixture): a trailing comment
    // keeps the text unique without changing the diagnostic it produces.
    return base.worksheet + "\n# variant " + std::to_string(seq) + "\n";
  }
}

}  // namespace rat::load
