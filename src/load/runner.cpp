#include "load/runner.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "io/json.hpp"
#include "obs/metrics.hpp"
#include "svc/fdio.hpp"
#include "util/rng.hpp"

namespace rat::load {

namespace {

constexpr double kNsPerSec = 1e9;
constexpr double kNsPerMs = 1e6;

/// One simulated client: a non-blocking socket plus its buffered,
/// not-yet-written requests and its partially-read response stream.
struct Conn {
  int fd = -1;
  bool alive = false;
  std::string wbuf;        ///< pending request bytes
  std::size_t woff = 0;    ///< already-written prefix of wbuf
  std::string rbuf;        ///< partial response line
};

/// Blocking connect to a loopback/IPv4 endpoint, retrying briefly so a
/// just-forked server that has not called listen(2) yet does not fail
/// the whole run. Returns -1 when the endpoint never comes up.
int connect_with_retry(const std::string& host, int port,
                       int attempts = 50) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return -1;
  for (int i = 0; i < attempts; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0) {
      svc::set_nonblock(fd);
      svc::set_cloexec(fd);
      return fd;
    }
    ::close(fd);
    if (errno != ECONNREFUSED && errno != ETIMEDOUT) return -1;
    ::poll(nullptr, 0, 20);  // portable short sleep
  }
  return -1;
}

/// Extract the request index from a response line's echoed id ("r<i>").
/// Returns false for ids the runner did not issue.
bool parse_response_index(const std::string& line, std::size_t* index) {
  const std::size_t key = line.find("\"id\":\"");
  if (key == std::string::npos) return false;
  std::size_t pos = key + 6;
  if (pos >= line.size() || line[pos] != 'r') return false;
  ++pos;
  std::uint64_t value = 0;
  bool any = false;
  while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
    value = value * 10 + static_cast<std::uint64_t>(line[pos] - '0');
    ++pos;
    any = true;
  }
  if (!any || pos >= line.size() || line[pos] != '"') return false;
  *index = static_cast<std::size_t>(value);
  return true;
}

/// E_* code of an error response; "E_UNKNOWN" when the line has none.
std::string parse_error_code(const std::string& line) {
  const std::size_t key = line.find("\"code\":\"");
  if (key == std::string::npos) return "E_UNKNOWN";
  const std::size_t start = key + 8;
  const std::size_t end = line.find('"', start);
  if (end == std::string::npos) return "E_UNKNOWN";
  return line.substr(start, end - start);
}

std::string hist_json_ms(const obs::LogHistogram& h) {
  std::string out = "{\"count\":" + std::to_string(h.count());
  out += ",\"overflow\":" + std::to_string(h.overflow_count());
  out += ",\"min\":" + io::json_number(static_cast<double>(h.min()) / kNsPerMs);
  out += ",\"mean\":" + io::json_number(h.mean() / kNsPerMs);
  out += ",\"p50\":" + io::json_number(h.percentile(50.0) / kNsPerMs);
  out += ",\"p90\":" + io::json_number(h.percentile(90.0) / kNsPerMs);
  out += ",\"p99\":" + io::json_number(h.percentile(99.0) / kNsPerMs);
  out += ",\"p999\":" + io::json_number(h.percentile(99.9) / kNsPerMs);
  out += ",\"max\":" + io::json_number(static_cast<double>(h.max()) / kNsPerMs);
  out += '}';
  return out;
}

}  // namespace

std::vector<std::string> slo_violations(const StepResult& step,
                                        const SloConfig& slo) {
  std::vector<std::string> out;
  if (slo.p99_ms > 0.0) {
    const double p99_ms = step.latency.percentile(99.0) / kNsPerMs;
    if (p99_ms > slo.p99_ms) {
      char buf[128];
      std::snprintf(buf, sizeof buf,
                    "p99 %.3f ms exceeds SLO %.3f ms at %g req/s", p99_ms,
                    slo.p99_ms, step.offered_rate_hz);
      out.push_back(buf);
    }
  }
  if (slo.error_rate >= 0.0) {
    const std::uint64_t scheduled = step.sent + step.lost;
    const double rate =
        scheduled ? static_cast<double>(step.errors + step.lost) /
                        static_cast<double>(scheduled)
                  : 0.0;
    if (rate > slo.error_rate) {
      char buf[128];
      std::snprintf(buf, sizeof buf,
                    "error rate %.6f exceeds SLO %.6f at %g req/s", rate,
                    slo.error_rate, step.offered_rate_hz);
      out.push_back(buf);
    }
  }
  return out;
}

StepResult run_step(const RunConfig& config, Mix& mix) {
  StepResult step;
  step.offered_rate_hz = config.rate_hz;
  const std::size_t total = config.requests;
  if (total == 0) return step;

  const std::vector<std::uint64_t> offsets =
      build_schedule(config.arrival, config.rate_hz, total, config.seed);
  // Payload stream gets its own generator so schedule and payload
  // choices never interleave draws (each is reproducible on its own).
  util::Rng payload_rng(config.seed ^ 0x9e3779b97f4a7c15ull);

  const std::size_t nconn =
      std::max<std::size_t>(1, std::min(config.connections, total));
  std::vector<Conn> conns(nconn);
  for (std::size_t c = 0; c < nconn; ++c) {
    conns[c].fd = connect_with_retry(config.host, config.port);
    if (conns[c].fd < 0) {
      for (Conn& conn : conns)
        if (conn.fd >= 0) ::close(conn.fd);
      throw std::runtime_error("run_step: cannot connect to " + config.host +
                               ":" + std::to_string(config.port));
    }
    conns[c].alive = true;
  }

  std::vector<std::uint8_t> resolved(total, 0);
  std::size_t n_resolved = 0;
  std::size_t next_to_send = 0;
  std::size_t alive_count = nconn;

  const std::uint64_t t0 = obs::now_ns();
  const std::uint64_t give_up_ns =
      t0 + offsets.back() +
      static_cast<std::uint64_t>(config.timeout_sec * kNsPerSec);

  auto kill_conn = [&](Conn& conn) {
    if (!conn.alive) return;
    conn.alive = false;
    ::close(conn.fd);
    conn.fd = -1;
    --alive_count;
    ++step.connection_drops;
  };

  auto enqueue = [&](std::size_t i) {
    Conn& conn = conns[i % nconn];
    // The payload draw happens even for dead connections so the request
    // stream stays identical whether or not drops occurred.
    const std::string worksheet = mix.next(payload_rng, config.duplicate_ratio);
    if (!conn.alive) {
      if (!resolved[i]) {
        resolved[i] = 1;
        ++n_resolved;
        ++step.lost;
      }
      return;
    }
    std::string line = "{\"id\":\"r" + std::to_string(i) +
                       "\",\"op\":\"evaluate\",\"worksheet\":" +
                       io::json_str(worksheet);
    if (config.deadline_ms > 0.0)
      line += ",\"deadline_ms\":" + io::json_number(config.deadline_ms);
    if (config.no_cache) line += ",\"no_cache\":true";
    line += "}\n";
    conn.wbuf += line;
    ++step.sent;
  };

  auto flush_writes = [&](Conn& conn) {
    while (conn.woff < conn.wbuf.size()) {
      const ssize_t n =
          ::send(conn.fd, conn.wbuf.data() + conn.woff,
                 conn.wbuf.size() - conn.woff, MSG_NOSIGNAL);
      if (n > 0) {
        conn.woff += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      kill_conn(conn);
      return;
    }
    if (conn.woff == conn.wbuf.size()) {
      conn.wbuf.clear();
      conn.woff = 0;
    } else if (conn.woff > 65536) {
      conn.wbuf.erase(0, conn.woff);
      conn.woff = 0;
    }
  };

  auto handle_line = [&](const std::string& line, std::uint64_t now) {
    std::size_t i = 0;
    if (!parse_response_index(line, &i) || i >= total || resolved[i]) return;
    resolved[i] = 1;
    ++n_resolved;
    // Latency from the *scheduled* send time: queueing delay inside the
    // runner counts against the server, never hides (open loop).
    const std::uint64_t sched = t0 + offsets[i];
    step.latency.record(now > sched ? now - sched : 0);
    if (line.find("\"status\":\"ok\"") != std::string::npos) {
      ++step.ok;
    } else {
      ++step.errors;
      ++step.error_codes[parse_error_code(line)];
    }
  };

  auto drain_reads = [&](Conn& conn, std::uint64_t now) {
    char chunk[65536];
    for (;;) {
      const ssize_t n = ::read(conn.fd, chunk, sizeof chunk);
      if (n > 0) {
        conn.rbuf.append(chunk, static_cast<std::size_t>(n));
        std::size_t start = 0;
        for (;;) {
          const std::size_t nl = conn.rbuf.find('\n', start);
          if (nl == std::string::npos) break;
          handle_line(conn.rbuf.substr(start, nl - start), now);
          start = nl + 1;
        }
        if (start) conn.rbuf.erase(0, start);
        if (static_cast<std::size_t>(n) == sizeof chunk) continue;
        return;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      kill_conn(conn);
      return;
    }
  };

  std::vector<pollfd> pfds;
  std::vector<std::size_t> pidx;
  while (n_resolved < total) {
    std::uint64_t now = obs::now_ns();
    if (now >= give_up_ns) {
      step.timed_out = true;
      break;
    }

    // Inject every request whose scheduled time has arrived — all of
    // them, even when the server is behind (open loop).
    while (next_to_send < total && now >= t0 + offsets[next_to_send]) {
      enqueue(next_to_send);
      ++next_to_send;
    }
    if (alive_count == 0) break;  // every connection died; rest is lost

    int timeout_ms;
    if (next_to_send < total) {
      const std::uint64_t due = t0 + offsets[next_to_send];
      timeout_ms = static_cast<int>((due - now) / 1000000);
      if (timeout_ms > 50) timeout_ms = 50;
    } else {
      const std::uint64_t left = give_up_ns - now;
      timeout_ms = static_cast<int>(left / 1000000) + 1;
      if (timeout_ms > 100) timeout_ms = 100;
    }

    pfds.clear();
    pidx.clear();
    for (std::size_t c = 0; c < nconn; ++c) {
      Conn& conn = conns[c];
      if (!conn.alive) continue;
      pollfd p{};
      p.fd = conn.fd;
      p.events = POLLIN;
      if (conn.woff < conn.wbuf.size()) p.events |= POLLOUT;
      pfds.push_back(p);
      pidx.push_back(c);
    }
    const int nready =
        ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), timeout_ms);
    if (nready <= 0) continue;

    now = obs::now_ns();
    for (std::size_t k = 0; k < pfds.size(); ++k) {
      Conn& conn = conns[pidx[k]];
      if (!conn.alive) continue;
      if (pfds[k].revents & (POLLIN | POLLHUP | POLLERR))
        drain_reads(conn, now);
      if (conn.alive && (pfds[k].revents & POLLOUT)) flush_writes(conn);
      if (conn.alive && (pfds[k].revents & POLLNVAL)) kill_conn(conn);
    }
  }

  // Whatever is still open: unanswered (or never-injected, when every
  // connection died early) requests are lost, not silently dropped.
  for (std::size_t i = next_to_send; i < total; ++i)
    if (!resolved[i]) {
      resolved[i] = 1;
      ++step.lost;
      ++n_resolved;
    }
  for (std::size_t i = 0; i < total; ++i)
    if (!resolved[i]) ++step.lost;

  const std::uint64_t end_ns = obs::now_ns();
  step.duration_sec = static_cast<double>(end_ns - t0) / kNsPerSec;
  const std::uint64_t answered = step.ok + step.errors;
  step.achieved_rate_hz =
      step.duration_sec > 0.0
          ? static_cast<double>(answered) / step.duration_sec
          : 0.0;

  for (Conn& conn : conns)
    if (conn.fd >= 0) ::close(conn.fd);
  return step;
}

std::string load_report_json(const RunConfig& config,
                             const std::vector<StepResult>& steps,
                             const SloConfig& slo,
                             const std::vector<std::string>& violations) {
  std::string out = "{\"schema\":\"rat.load.v1\"";

  out += ",\"config\":{\"host\":" + io::json_str(config.host);
  out += ",\"port\":" + std::to_string(config.port);
  out += ",\"connections\":" + std::to_string(config.connections);
  out += ",\"requests\":" + std::to_string(config.requests);
  out += ",\"arrival\":" + io::json_str(arrival_name(config.arrival));
  out += ",\"seed\":" + std::to_string(config.seed);
  out += ",\"duplicate_ratio\":" + io::json_number(config.duplicate_ratio);
  out += ",\"deadline_ms\":" + io::json_number(config.deadline_ms);
  out += ",\"no_cache\":" + std::string(config.no_cache ? "true" : "false");
  out += ",\"timeout_sec\":" + io::json_number(config.timeout_sec) + "}";

  out += ",\"steps\":[";
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const StepResult& s = steps[i];
    if (i) out += ',';
    out += "{\"offered_rate_hz\":" + io::json_number(s.offered_rate_hz);
    out += ",\"achieved_rate_hz\":" + io::json_number(s.achieved_rate_hz);
    out += ",\"duration_sec\":" + io::json_number(s.duration_sec);
    out += ",\"sent\":" + std::to_string(s.sent);
    out += ",\"ok\":" + std::to_string(s.ok);
    out += ",\"errors\":" + std::to_string(s.errors);
    out += ",\"lost\":" + std::to_string(s.lost);
    out += ",\"connection_drops\":" + std::to_string(s.connection_drops);
    out += ",\"timed_out\":" + std::string(s.timed_out ? "true" : "false");
    out += ",\"error_codes\":{";
    bool first = true;
    for (const auto& [code, count] : s.error_codes) {
      if (!first) out += ',';
      first = false;
      out += io::json_str(code) + ":" + std::to_string(count);
    }
    out += "},\"latency_ms\":" + hist_json_ms(s.latency) + "}";
  }
  out += ']';

  out += ",\"slo\":{\"checked\":";
  out += (slo.p99_ms > 0.0 || slo.error_rate >= 0.0) ? "true" : "false";
  out += ",\"p99_ms\":" + io::json_number(slo.p99_ms);
  out += ",\"error_rate\":" + io::json_number(slo.error_rate);
  out += ",\"violations\":[";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i) out += ',';
    out += io::json_str(violations[i]);
  }
  out += "]}}";
  return out;
}

}  // namespace rat::load
